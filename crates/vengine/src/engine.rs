//! The composed VLITTLE engine.
//!
//! [`VLittleEngine`] wires the VCU, the lanes, the VXU and the VMU behind
//! the [`VectorEngine`] interface the big core drives. The paper's
//! mode-switch cost (saving thread contexts and flushing the little-core
//! pipelines, ~500 cycles) is charged to the first dispatched vector
//! instruction of a region.

use crate::lane::{Lane, LaneEnv, LaneEvent, TimedEvent};
use crate::regmap::RegMap;
use crate::vcu::{expand, Expansion, Target, Vcu, VcuParams};
use crate::vmu::{Vmu, VmuParams};
use crate::vxu::{Vxu, VxuParams};
use bvl_core::types::{CoreStats, Quiescence, VecCmd, VectorEngine};
use bvl_mem::{IdMap, MemHierarchy};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Full engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineParams {
    /// Register-mapping geometry (lanes, chimes, packing).
    pub regmap: RegMap,
    /// VCU queues.
    pub vcu: VcuParams,
    /// VMU queues and coalescing.
    pub vmu: VmuParams,
    /// VXU ring.
    pub vxu: VxuParams,
    /// Per-lane micro-op queue depth.
    pub lane_inq: usize,
    /// One-time vector-region entry penalty, cycles (paper: 500).
    pub switch_penalty: u64,
}

impl EngineParams {
    /// The paper's `1b-4VL` configuration: 4 lanes, 2 chimes, packed
    /// 32-bit elements (512-bit hardware vector length).
    pub fn paper_default() -> Self {
        EngineParams {
            regmap: RegMap::paper_default(),
            vcu: VcuParams::default(),
            vmu: VmuParams::default(),
            vxu: VxuParams::default(),
            lane_inq: 2,
            switch_penalty: 500,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct MemTrack {
    idx_events: u32,
    store_events: u32,
    loadwb_events: u32,
}

#[derive(Clone, Copy, Debug)]
struct VxTrack {
    consumers: u32,
    scalar_seq: Option<u64>,
}

snap_struct!(MemTrack {
    idx_events,
    store_events,
    loadwb_events,
});

snap_struct!(VxTrack {
    consumers,
    scalar_seq,
});

/// The VLITTLE engine: a little-core cluster acting as one decoupled
/// vector engine.
#[derive(Debug)]
pub struct VLittleEngine {
    params: EngineParams,
    lanes: Vec<Lane>,
    vcu: Vcu,
    vmu: Vmu,
    vxu: Vxu,
    mem_track: IdMap<MemTrack>,
    vx_track: IdMap<VxTrack>,
    pending_events: Vec<TimedEvent>,
    scalar_done: VecDeque<u64>,
    next_mem_id: u64,
    next_vx_id: u64,
    now: u64,
    line_bytes: u64,
    first_dispatch_done: bool,
}

impl VLittleEngine {
    /// Builds an engine with the given geometry over `line_bytes` caches.
    pub fn new(params: EngineParams, line_bytes: u64) -> Self {
        let lanes = (0..params.regmap.cores)
            .map(|c| Lane::new(c, params.regmap, params.lane_inq))
            .collect();
        VLittleEngine {
            lanes,
            vcu: Vcu::new(params.vcu),
            vmu: Vmu::new(params.regmap.cores as usize, params.vmu),
            vxu: Vxu::new(params.vxu),
            mem_track: IdMap::starting_at(1),
            vx_track: IdMap::starting_at(1),
            pending_events: Vec::new(),
            scalar_done: VecDeque::new(),
            next_mem_id: 0,
            next_vx_id: 0,
            now: 0,
            line_bytes,
            first_dispatch_done: false,
            params,
        }
    }

    /// The engine's configuration.
    pub fn params(&self) -> &EngineParams {
        &self.params
    }

    /// A lane's accumulated statistics (Figure 7 data).
    pub fn lane_stats(&self, core: usize) -> &CoreStats {
        self.lanes[core].stats()
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Certifies that no in-flight engine activity can still affect
    /// architectural state: the VCU, every lane, the VMU, the VXU and all
    /// pending events and scalar handoffs are drained.
    ///
    /// The engine is timing-only (architectural state lives in the big
    /// core's golden machine), so this is the precondition under which a
    /// final-state snapshot of that machine is well defined — the oracle
    /// contract checked by the differential-test harness.
    pub fn arch_drained(&self) -> bool {
        VectorEngine::idle(self)
    }

    /// VMU statistics.
    pub fn vmu_stats(&self) -> &crate::vmu::VmuStats {
        self.vmu.stats()
    }

    /// Debug dump (temporary).
    pub fn debug_dump(&self) -> String {
        self.vmu.debug_dump()
    }

    /// VXU statistics.
    pub fn vxu_stats(&self) -> &crate::vxu::VxuStats {
        self.vxu.stats()
    }

    /// Registers the engine's functional-unit counters under `scope`
    /// (conventionally `sys.engine`): `vmu.*` and `vxu.*`. Lane stats are
    /// registered by the simulator alongside the cores (`sys.lane{i}`).
    pub fn register_stats(&self, scope: &mut bvl_obs::Scope<'_>) {
        self.vmu.stats().register(&mut scope.scope("vmu"));
        self.vxu.stats().register(&mut scope.scope("vxu"));
    }

    fn apply_event(&mut self, ev: LaneEvent, now: u64) {
        match ev {
            LaneEvent::IdxSent { mem_id } => {
                if let Some(t) = self.mem_track.get_mut(mem_id) {
                    t.idx_events = t.idx_events.saturating_sub(1);
                    if t.idx_events == 0 {
                        self.vmu.idx_ready(mem_id);
                    }
                }
            }
            LaneEvent::StoreSent { mem_id } => {
                if let Some(t) = self.mem_track.get_mut(mem_id) {
                    t.store_events = t.store_events.saturating_sub(1);
                    if t.store_events == 0 {
                        self.vmu.store_data_done(mem_id);
                        self.mem_track.remove(mem_id);
                    }
                }
            }
            LaneEvent::LoadWbDone { mem_id } => {
                if let Some(t) = self.mem_track.get_mut(mem_id) {
                    t.loadwb_events = t.loadwb_events.saturating_sub(1);
                    if t.loadwb_events == 0 {
                        self.vmu.retire_load(mem_id);
                        self.mem_track.remove(mem_id);
                    }
                }
            }
            LaneEvent::VxReadDone { vx_id } => {
                self.vxu.read_done(vx_id, now);
            }
            LaneEvent::VxConsumed { vx_id } => {
                if let Some(t) = self.vx_track.get_mut(vx_id) {
                    t.consumers = t.consumers.saturating_sub(1);
                    if t.consumers == 0 {
                        self.vxu.complete(vx_id);
                        self.vx_track.remove(vx_id);
                    }
                }
            }
        }
    }

    fn apply_expansion(&mut self, now: u64, ex: Expansion) {
        if let Some(seq) = ex.immediate_scalar {
            self.vcu.queue_scalar(now, seq);
        }
        if let Some((mc, mb)) = ex.mem {
            let mem_id = mb.mem_id;
            let indexed = mc.indexed;
            let is_store = mc.is_store;
            if !is_store && mb.loadwb_events == 0 {
                // vl = 0 load: zero chimes means no lane writeback
                // micro-op will ever consume a result, and a zero-length
                // access has no lines to fetch — there is nothing to
                // time. Handing it to the VMU would wedge the engine:
                // loads only retire via their consumers' LoadWbDone
                // events, which would never fire.
                debug_assert!(mc.lines.is_empty(), "vl=0 load with line traffic");
                return;
            }
            bvl_obs::trace::emit(now, "vmu", 0, "mem_cmd", mem_id);
            self.vmu.push_cmd(mc);
            if indexed && mb.idx_events == 0 {
                self.vmu.idx_ready(mem_id);
            }
            if is_store && mb.store_events == 0 {
                self.vmu.store_data_done(mem_id);
            }
            if mb.idx_events > 0 || mb.store_events > 0 || mb.loadwb_events > 0 {
                self.mem_track.insert(
                    mem_id,
                    MemTrack {
                        idx_events: mb.idx_events,
                        store_events: mb.store_events,
                        loadwb_events: mb.loadwb_events,
                    },
                );
            }
        }
        if let Some(vx) = ex.vx {
            bvl_obs::trace::emit(now, "vxu", 0, "begin", vx.id);
            self.vxu.begin(vx.id, vx.reads, vx.total_elems);
            self.vx_track.insert(
                vx.id,
                VxTrack {
                    consumers: vx.consumers,
                    scalar_seq: vx.scalar_seq,
                },
            );
        }
    }

    /// True while a scalar response awaits the big core's poll (the big
    /// core's next tick consumes it, so its domain must keep stepping).
    pub fn scalar_pending(&self) -> bool {
        !self.scalar_done.is_empty()
    }

    /// The engine's self-assessment for the tick-skip engine.
    ///
    /// `Active` means a tick at `now` may change state. `Idle` means
    /// every tick strictly before `until` — absent memory responses on
    /// the engine's VMU ports and new dispatches from the big core — is a
    /// no-op except for the constant per-lane stall accounting (and VMIU
    /// backpressure counting) that [`VLittleEngine::skip_idle`] applies in
    /// batch. The returned `account` is always `None`: per-lane
    /// attribution does not fit one component-level kind.
    pub fn quiescence(&self, now: u64) -> Quiescence {
        let mut until: Option<u64> = None;
        let mut fold = |t: u64| until = Some(until.map_or(t, |u| u.min(t)));

        // The VMU acts on its own (VLU delivery, request issue, line
        // generation)?
        if self.vmu.quiescence().is_none() {
            return Quiescence::Active;
        }
        // Command-bus / response-bus transfers complete?
        for t in [self.vcu.bus_next_ready(), self.vcu.resp_next_ready()]
            .into_iter()
            .flatten()
        {
            if t <= now {
                return Quiescence::Active;
            }
            fold(t);
        }
        // A broadcast would go out this cycle?
        let can_broadcast = match self.vcu.head().map(|q| q.target) {
            Some(Target::All) => self.lanes.iter().all(Lane::can_accept),
            Some(Target::One(c)) => self.lanes[c as usize].can_accept(),
            None => false,
        };
        if can_broadcast {
            return Quiescence::Active;
        }
        // Matured (or maturing) lane events?
        for e in &self.pending_events {
            if e.at <= now {
                return Quiescence::Active;
            }
            fold(e.at);
        }
        // A scalar-only ring transaction completing?
        for (id, t) in self.vx_track.iter() {
            if t.consumers == 0 && t.scalar_seq.is_some() {
                match self.vxu.ready_at(id) {
                    Some(r) if r <= now => return Quiescence::Active,
                    Some(r) => fold(r),
                    None => {}
                }
            }
        }
        // The lanes themselves.
        let env = LaneEnv {
            vmu: &self.vmu,
            vxu: &self.vxu,
            vcu_busy: self.vcu.busy(),
        };
        for lane in &self.lanes {
            match lane.quiescence(now, &env) {
                Quiescence::Active => return Quiescence::Active,
                Quiescence::Idle { until: Some(t), .. } => {
                    if t <= now {
                        return Quiescence::Active;
                    }
                    fold(t);
                }
                Quiescence::Idle { until: None, .. } => {}
            }
        }
        Quiescence::Idle {
            until,
            account: None,
        }
    }

    /// Batch-applies the effects of `cycles` skipped quiescent engine
    /// ticks starting at `now`: each lane records `cycles` of its current
    /// stall kind, the VMIU's backpressure counter advances if it was
    /// counting, and the engine clock moves so a later dispatch stamps
    /// the command bus exactly as the naive loop would have.
    ///
    /// # Panics
    ///
    /// Debug-panics unless [`VLittleEngine::quiescence`] reports `Idle`
    /// covering the window.
    pub fn skip_idle(&mut self, now: u64, cycles: u64) {
        debug_assert!(
            match self.quiescence(now) {
                Quiescence::Active => false,
                Quiescence::Idle { until, .. } => until.is_none_or(|u| now + cycles <= u),
            },
            "skip_idle outside a quiescent window"
        );
        let backpressured = self
            .vmu
            .quiescence()
            .expect("quiescent window implies a quiescent VMU");
        self.vmu.skip_idle(cycles, backpressured);
        let env = LaneEnv {
            vmu: &self.vmu,
            vxu: &self.vxu,
            vcu_busy: self.vcu.busy(),
        };
        for lane in &mut self.lanes {
            let kind = match lane.quiescence(now, &env) {
                Quiescence::Idle {
                    account: Some(k), ..
                } => k,
                q => unreachable!("lane not quiescent during engine skip: {q:?}"),
            };
            lane.skip_idle(cycles, kind);
        }
        self.now += cycles;
    }

    /// Appends the engine's mutable state (lanes, VCU, VMU, VXU, event
    /// and transaction tracking) to a checkpoint. Configuration (`params`,
    /// `line_bytes`) is not written — a restore target is built from the
    /// same [`VLittleEngine::new`] arguments.
    pub fn save_state(&self, w: &mut SnapWriter) {
        for lane in &self.lanes {
            lane.save_state(w);
        }
        self.vcu.save_state(w);
        self.vmu.save_state(w);
        self.vxu.save_state(w);
        self.mem_track.save(w);
        self.vx_track.save(w);
        self.pending_events.save(w);
        self.scalar_done.save(w);
        self.next_mem_id.save(w);
        self.next_vx_id.save(w);
        self.now.save(w);
        self.first_dispatch_done.save(w);
    }

    /// Restores state written by [`VLittleEngine::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input or shapes not
    /// matching this engine's configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for lane in &mut self.lanes {
            lane.restore_state(r)?;
        }
        self.vcu.restore_state(r)?;
        self.vmu.restore_state(r)?;
        self.vxu.restore_state(r)?;
        self.mem_track = Snap::load(r)?;
        self.vx_track = Snap::load(r)?;
        self.pending_events = Snap::load(r)?;
        self.scalar_done = Snap::load(r)?;
        self.next_mem_id = Snap::load(r)?;
        self.next_vx_id = Snap::load(r)?;
        self.now = Snap::load(r)?;
        self.first_dispatch_done = Snap::load(r)?;
        Ok(())
    }
}

impl VectorEngine for VLittleEngine {
    fn can_accept(&self) -> bool {
        self.vcu.can_accept()
    }

    fn dispatch(&mut self, cmd: VecCmd) {
        let now = self.now;
        bvl_obs::trace::emit(now, "vengine", 0, "cmd", cmd.seq);
        if !self.first_dispatch_done {
            self.first_dispatch_done = true;
            // Region-entry cost: context save + pipeline flush (paper
            // section IV-A charges 500 cycles per vector region).
            self.vcu
                .dispatch_with_extra(now, self.params.switch_penalty, cmd);
            return;
        }
        self.vcu.dispatch(now, cmd);
    }

    fn pop_scalar_done(&mut self) -> Option<u64> {
        self.scalar_done.pop_front()
    }

    fn mem_drained(&self) -> bool {
        self.vmu.drained() && self.vcu.mem_on_bus() == 0
    }

    fn idle(&self) -> bool {
        !self.vcu.busy()
            && self.lanes.iter().all(Lane::idle)
            && self.vmu.drained()
            && !self.vxu.busy()
            && self.pending_events.is_empty()
            && self.scalar_done.is_empty()
    }

    fn tick(&mut self, now: u64, hier: &mut MemHierarchy) {
        self.now = now;

        // 1. Memory side.
        self.vmu.tick(now, hier);

        // 2. Lane events that mature this cycle, drained in place (their
        //    relative order is immaterial: each only decrements a counter
        //    or timestamps the ring with the same `now`).
        let mut i = 0;
        while i < self.pending_events.len() {
            if self.pending_events[i].at <= now {
                let ev = self.pending_events.swap_remove(i).event;
                self.apply_event(ev, now);
            } else {
                i += 1;
            }
        }

        // 3. Scalar-only ring transactions (vcpop/vfirst/vmv.x.s). The
        //    VXU serializes, so at most one transaction can be ready.
        loop {
            let ready = self.vx_track.iter().find_map(|(id, t)| {
                if t.consumers == 0 {
                    t.scalar_seq
                        .filter(|_| self.vxu.ready(id, now))
                        .map(|seq| (id, seq))
                } else {
                    None
                }
            });
            let Some((id, seq)) = ready else { break };
            self.scalar_done.push_back(seq);
            self.vxu.complete(id);
            self.vx_track.remove(id);
        }

        // 4. Lanes issue, pushing completion events for future cycles.
        let vcu_busy = self.vcu.busy();
        let env = LaneEnv {
            vmu: &self.vmu,
            vxu: &self.vxu,
            vcu_busy,
        };
        for lane in &mut self.lanes {
            lane.tick(now, &env, &mut self.pending_events);
        }

        // 5. VCU-produced scalar responses.
        while let Some(seq) = self.vcu.pop_scalar(now) {
            self.scalar_done.push_back(seq);
        }

        // 6. Accept/expand the next instruction off the command bus.
        let regmap = self.params.regmap;
        let lanes = u32::from(regmap.cores);
        let line_bytes = self.line_bytes;
        let coalesce = self.params.vmu.coalesce;
        let vmu_ok = self.vmu.can_accept();
        let vxu_free = !self.vxu.busy();
        let (next_mem, next_vx) = (&mut self.next_mem_id, &mut self.next_vx_id);
        let ex = self.vcu.pop_cmd_if(now, |cmd| {
            if cmd.instr.is_vector_mem() && !vmu_ok {
                return None;
            }
            if cmd.instr.is_cross_element() && !vxu_free {
                return None;
            }
            Some(expand(
                cmd, &regmap, lanes, line_bytes, coalesce, next_mem, next_vx,
            ))
        });
        if let Some(ex) = ex {
            self.apply_expansion(now, ex);
        }

        // 7. Broadcast one micro-op (lock-step: all targets must accept).
        let can_broadcast = match self.vcu.head().map(|q| q.target) {
            Some(Target::All) => self.lanes.iter().all(Lane::can_accept),
            Some(Target::One(c)) => self.lanes[c as usize].can_accept(),
            None => false,
        };
        if can_broadcast {
            let q = self.vcu.pop_head().expect("head checked");
            match q.target {
                Target::All => {
                    for lane in &mut self.lanes {
                        lane.receive(q.uop.clone());
                    }
                }
                Target::One(c) => self.lanes[c as usize].receive(q.uop),
            }
        }
    }

    fn vlen_bits(&self) -> u32 {
        self.params.regmap.vlen_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_core::big::{BigCore, BigParams};
    use bvl_core::fetch::TEXT_BASE;
    use bvl_isa::asm::Assembler;
    use bvl_isa::reg::{VReg, XReg};
    use bvl_isa::vcfg::Sew;
    use bvl_mem::{HierConfig, MemHierarchy, SharedMem, SimMemory};
    use std::sync::Arc;

    fn x(i: u8) -> XReg {
        XReg::new(i)
    }
    fn v(i: u8) -> VReg {
        VReg::new(i)
    }

    /// Runs a program on big core + VLITTLE engine; returns (cycles, mem).
    fn run_vlittle(
        a: &Assembler,
        mem: SimMemory,
        params: EngineParams,
    ) -> (u64, SharedMem, VLittleEngine, BigCore) {
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(mem);
        let mut hier = MemHierarchy::new(HierConfig::with_little(params.regmap.cores as usize));
        hier.set_vector_mode(true);
        let mut engine = VLittleEngine::new(params, hier.line_bytes());
        let mut big = BigCore::new(
            shared.clone(),
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            engine.vlen_bits(),
            BigParams::default(),
        );
        big.assign(0);
        for t in 0..5_000_000u64 {
            hier.tick(t);
            engine.tick(t, &mut hier);
            big.tick(t, &mut hier, Some(&mut engine));
            if big.done() && engine.idle() {
                return (t, shared, engine, big);
            }
        }
        panic!("vlittle system did not finish");
    }

    fn saxpy_vector_program(n: u64, xs: u64, ys: u64) -> Assembler {
        let (rn, rx, ry, rvl, rb) = (x(10), x(11), x(12), x(13), x(14));
        let mut a = Assembler::new();
        a.li(rn, n as i64);
        a.li(rx, xs as i64);
        a.li(ry, ys as i64);
        // f1 = a = 2.0
        a.li(x(20), 2);
        a.fcvt_s_w(bvl_isa::reg::FReg::new(1), x(20));
        a.label("strip");
        a.vsetvli(rvl, rn, Sew::E32);
        a.vle(v(1), rx); // x
        a.vle(v(2), ry); // y
        a.vfmacc_vf(v(2), bvl_isa::reg::FReg::new(1), v(1)); // y += a*x
        a.vse(v(2), ry);
        a.slli(rb, rvl, 2);
        a.add(rx, rx, rb);
        a.add(ry, ry, rb);
        a.sub(rn, rn, rvl);
        a.bne(rn, XReg::ZERO, "strip");
        a.vmfence();
        a.halt();
        a
    }

    #[test]
    fn saxpy_end_to_end_correct_and_complete() {
        let n = 64u64;
        let mut mem = SimMemory::new(1 << 22);
        let xs_data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys_data: Vec<f32> = (0..n).map(|i| 10.0 * i as f32).collect();
        let xs = mem.alloc_f32(&xs_data);
        let ys = mem.alloc_f32(&ys_data);
        let a = saxpy_vector_program(n, xs, ys);
        let (cycles, shared, engine, _big) = run_vlittle(&a, mem, EngineParams::paper_default());
        // Functional result.
        shared.with(|m| {
            for i in 0..n as usize {
                let got = m.read_f32_array(ys, n as usize)[i];
                let want = 10.0 * i as f32 + 2.0 * i as f32;
                assert_eq!(got, want, "element {i}");
            }
        });
        // Timing sanity: includes the 500-cycle region entry.
        assert!(cycles > 500, "cycles = {cycles}");
        assert!(cycles < 100_000, "cycles = {cycles}");
        assert!(engine.vmu_stats().cmds >= 12); // 4 strips x 3 mem ops
    }

    #[test]
    fn vl0_load_does_not_wedge_the_engine() {
        // Regression (found by differential fuzzing, pinned in
        // `crates/difftest/corpus/masked_off_vle_livelock.s`): a vector
        // load at the power-on vl of 0 expands to zero lane writeback
        // micro-ops, so nothing would ever retire the VMU's command —
        // the engine must not be handed one in the first place.
        let mut a = Assembler::new();
        a.li(x(21), 0x2000);
        a.vle_m(v(5), x(21));
        a.vmfence();
        a.halt();
        let (_, _, engine, _) =
            run_vlittle(&a, SimMemory::new(1 << 20), EngineParams::paper_default());
        assert!(engine.idle(), "engine wedged on a vl=0 load");
    }

    #[test]
    fn vsetvl_reports_engine_vlmax() {
        let mut a = Assembler::new();
        a.li(x(1), 1000);
        a.vsetvli(x(2), x(1), Sew::E32);
        a.vmfence();
        a.halt();
        let (_, _, _, big) =
            run_vlittle(&a, SimMemory::new(1 << 20), EngineParams::paper_default());
        assert_eq!(big.machine().xreg(x(2)), 16); // 512-bit engine at e32
    }

    #[test]
    fn reduction_through_ring_yields_scalar() {
        let mut a = Assembler::new();
        a.vsetivli(x(1), 16, Sew::E32);
        a.vid(v(1)); // 0..15
        a.vmv_s_x(v(2), XReg::ZERO);
        a.vredsum(v(3), v(1), v(2));
        a.vmv_x_s(x(5), v(3));
        a.vmfence();
        a.halt();
        let (_, _, engine, big) =
            run_vlittle(&a, SimMemory::new(1 << 20), EngineParams::paper_default());
        assert_eq!(big.machine().xreg(x(5)), 120);
        assert!(engine.vxu_stats().transactions >= 2); // redsum + mv.x.s
    }

    #[test]
    fn single_chime_config_needs_more_strips() {
        // 1c (128-bit) vs 2c+sw (512-bit): the smaller engine executes the
        // same program with more strip-mine iterations and more fetches.
        let n = 256u64;
        let mk_mem = || {
            let mut mem = SimMemory::new(1 << 22);
            let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let ys: Vec<f32> = (0..n).map(|_| 1.0).collect();
            let xa = mem.alloc_f32(&xs);
            let ya = mem.alloc_f32(&ys);
            (mem, xa, ya)
        };
        let small = EngineParams {
            regmap: RegMap {
                cores: 4,
                chimes: 1,
                packed: false,
            },
            ..EngineParams::paper_default()
        };
        let (mem, xa, ya) = mk_mem();
        let (cycles_small, ..) = run_vlittle(&saxpy_vector_program(n, xa, ya), mem, small);
        let (mem, xa, ya) = mk_mem();
        let (cycles_big, ..) = run_vlittle(
            &saxpy_vector_program(n, xa, ya),
            mem,
            EngineParams::paper_default(),
        );
        assert!(
            cycles_small > cycles_big,
            "1c ({cycles_small}) should be slower than 2c+sw ({cycles_big})"
        );
    }

    #[test]
    fn vmfence_waits_for_stores() {
        // Store then fence then halt: the program must not finish before
        // the VMU drains.
        let mut a = Assembler::new();
        a.vsetivli(x(1), 16, Sew::E32);
        a.vid(v(1));
        a.li(x(2), 0x8000);
        a.vse(v(1), x(2));
        a.vmfence();
        a.halt();
        let (_, shared, engine, _) =
            run_vlittle(&a, SimMemory::new(1 << 20), EngineParams::paper_default());
        assert!(engine.mem_drained());
        shared.with(|m| {
            for i in 0..16u64 {
                assert_eq!(bvl_isa::mem::Memory::read_uint(m, 0x8000 + i * 4, 4), i);
            }
        });
    }

    /// Oracle for the tick-skip contract: whenever `quiescence` reports
    /// `Idle` and no external wake (hierarchy event or pending VMU
    /// response) exists, the naive tick must change nothing observable
    /// except the exact accounting `skip_idle` would batch-apply: one
    /// cycle of each lane's predicted stall kind plus (possibly) one
    /// VMIU backpressure cycle.
    #[test]
    fn quiescence_predicts_naive_ticks() {
        use bvl_mem::PortId;

        let n = 32u64;
        let mut mem = SimMemory::new(1 << 22);
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let xa = mem.alloc_f32(&xs);
        let ya = mem.alloc_f32(&xs);
        let a = saxpy_vector_program(n, xa, ya);
        let params = EngineParams::paper_default();

        let prog = Arc::new(a.assemble().unwrap());
        let _shared = SharedMem::new(mem);
        let mut hier = MemHierarchy::new(HierConfig::with_little(params.regmap.cores as usize));
        hier.set_vector_mode(true);
        let mut engine = VLittleEngine::new(params, hier.line_bytes());
        let mut big = BigCore::new(
            _shared.clone(),
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            engine.vlen_bits(),
            BigParams::default(),
        );
        big.assign(0);

        let mut idle_checked = 0u64;
        for t in 0..1_000_000u64 {
            let q = engine.quiescence(t);
            let external =
                hier.next_event(t).is_some_and(|e| e <= t) || hier.response_pending(PortId::Vmu(0));
            let predicted = if matches!(q, Quiescence::Idle { .. }) && !external {
                let env = LaneEnv {
                    vmu: &engine.vmu,
                    vxu: &engine.vxu,
                    vcu_busy: engine.vcu.busy(),
                };
                let kinds: Vec<_> = engine
                    .lanes
                    .iter()
                    .map(|l| match l.quiescence(t, &env) {
                        Quiescence::Idle {
                            account: Some(k), ..
                        } => k,
                        other => panic!("lane not idle inside idle engine window: {other:?}"),
                    })
                    .collect();
                let bp = engine
                    .vmu
                    .quiescence()
                    .expect("idle engine implies quiescent VMU");
                let lanes_before: Vec<CoreStats> = (0..engine.num_lanes())
                    .map(|c| *engine.lane_stats(c))
                    .collect();
                Some((
                    kinds,
                    bp,
                    lanes_before,
                    *engine.vmu_stats(),
                    *engine.vxu_stats(),
                ))
            } else {
                None
            };

            hier.tick(t);
            engine.tick(t, &mut hier);
            big.tick(t, &mut hier, Some(&mut engine));

            if let Some((kinds, bp, lanes_before, vmu_before, vxu_before)) = predicted {
                idle_checked += 1;
                for (c, kind) in kinds.iter().enumerate() {
                    let mut want = lanes_before[c];
                    want.account(*kind);
                    assert_eq!(*engine.lane_stats(c), want, "lane {c} accounting at t={t}");
                }
                let mut want_vmu = vmu_before;
                if bp {
                    want_vmu.vmiu_backpressure += 1;
                }
                assert_eq!(*engine.vmu_stats(), want_vmu, "vmu stats at t={t}");
                assert_eq!(*engine.vxu_stats(), vxu_before, "vxu stats at t={t}");
            }

            if big.done() && engine.idle() {
                assert!(idle_checked > 0, "run never exercised an idle window");
                return;
            }
        }
        panic!("vlittle system did not finish");
    }

    #[test]
    fn lane_breakdowns_cover_all_cycles() {
        let n = 64u64;
        let mut mem = SimMemory::new(1 << 22);
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let xa = mem.alloc_f32(&xs);
        let ya = mem.alloc_f32(&xs);
        let a = saxpy_vector_program(n, xa, ya);
        let (_, _, engine, _) = run_vlittle(&a, mem, EngineParams::paper_default());
        for c in 0..engine.num_lanes() {
            let s = engine.lane_stats(c);
            let total: u64 = s.breakdown.iter().sum();
            assert_eq!(total, s.cycles, "lane {c} breakdown incomplete");
            assert!(
                s.of(bvl_core::types::StallKind::Busy) > 0,
                "lane {c} never busy"
            );
        }
    }
}
