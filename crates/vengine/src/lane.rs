//! A little core's back-end operating as a vector lane.
//!
//! In vector mode the little core's fetch/decode stages are off; micro-ops
//! from the VCU enter at the issue stage and flow through the existing
//! back-end in order (paper section III-C). The lane keeps a scoreboard
//! over its slice of the vector registers — physical scalar registers,
//! indexed `(chime, vreg)` — and prices packed sub-word elements:
//! *simple* integer micro-ops process a packed register in one cycle,
//! while long-latency micro-ops (mul/div and all FP) serialize the packed
//! elements over multiple cycles.
//!
//! Every cycle is attributed to one Figure 7 category: `busy`, `simd`
//! (waiting for a lock-step micro-op from the VCU), `raw_mem`, `raw_llfu`,
//! `struct`, `xelem` or `misc`.

use crate::regmap::RegMap;
use crate::uop::{Uop, UopKind};
use crate::vmu::Vmu;
use crate::vxu::Vxu;
use bvl_core::types::{CoreStats, Quiescence, StallKind};
use bvl_isa::instr::VArithOp;
use bvl_isa::meta::{reduction_step_latency, vector_op_latency, LAT_ALU, LAT_DIV};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Why a register value is still pending (for stall attribution).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PendKind {
    /// Produced by a memory writeback.
    Mem,
    /// Produced by a long-latency FU.
    Llfu,
    /// Produced by the VXU.
    Xelem,
    /// Produced by a single-cycle op.
    Alu,
}

/// What a lane reports back to the engine when a micro-op completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneEvent {
    /// Index elements for an indexed load were streamed to the VMIU.
    IdxSent {
        /// VMU transaction.
        mem_id: u64,
    },
    /// Store data (and addresses, if indexed) streamed to the VSU.
    StoreSent {
        /// VMU transaction.
        mem_id: u64,
    },
    /// This lane's `vxread` contribution entered the ring.
    VxReadDone {
        /// VXU transaction.
        vx_id: u64,
    },
    /// This lane consumed ring output (`vxwrite`/`vxreduce` finished).
    VxConsumed {
        /// VXU transaction.
        vx_id: u64,
    },
    /// This lane's load-writeback micro-op consumed VLU data.
    LoadWbDone {
        /// VMU transaction.
        mem_id: u64,
    },
}

/// A lane event plus the cycle it takes effect.
#[derive(Clone, Copy, Debug)]
pub struct TimedEvent {
    /// Effect cycle.
    pub at: u64,
    /// The event.
    pub event: LaneEvent,
}

impl Snap for PendKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            PendKind::Mem => 0,
            PendKind::Llfu => 1,
            PendKind::Xelem => 2,
            PendKind::Alu => 3,
        });
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => PendKind::Mem,
            1 => PendKind::Llfu,
            2 => PendKind::Xelem,
            3 => PendKind::Alu,
            t => {
                return Err(SnapError::BadTag {
                    ty: "PendKind",
                    tag: u64::from(t),
                })
            }
        })
    }
}

impl Snap for LaneEvent {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            LaneEvent::IdxSent { mem_id } => {
                w.u8(0);
                mem_id.save(w);
            }
            LaneEvent::StoreSent { mem_id } => {
                w.u8(1);
                mem_id.save(w);
            }
            LaneEvent::VxReadDone { vx_id } => {
                w.u8(2);
                vx_id.save(w);
            }
            LaneEvent::VxConsumed { vx_id } => {
                w.u8(3);
                vx_id.save(w);
            }
            LaneEvent::LoadWbDone { mem_id } => {
                w.u8(4);
                mem_id.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => LaneEvent::IdxSent {
                mem_id: Snap::load(r)?,
            },
            1 => LaneEvent::StoreSent {
                mem_id: Snap::load(r)?,
            },
            2 => LaneEvent::VxReadDone {
                vx_id: Snap::load(r)?,
            },
            3 => LaneEvent::VxConsumed {
                vx_id: Snap::load(r)?,
            },
            4 => LaneEvent::LoadWbDone {
                mem_id: Snap::load(r)?,
            },
            t => {
                return Err(SnapError::BadTag {
                    ty: "LaneEvent",
                    tag: u64::from(t),
                })
            }
        })
    }
}

snap_struct!(TimedEvent { at, event });

/// Read-only engine state a lane consults while issuing.
pub struct LaneEnv<'a> {
    /// The vector memory unit (load-data readiness).
    pub vmu: &'a Vmu,
    /// The cross-element unit (ring readiness).
    pub vxu: &'a Vxu,
    /// True if the VCU still holds micro-ops (distinguishes `simd` from
    /// `misc` when the lane's queue is empty).
    pub vcu_busy: bool,
}

/// One vector lane.
#[derive(Debug)]
pub struct Lane {
    core: u8,
    regmap: RegMap,
    inq: VecDeque<Uop>,
    inq_depth: usize,
    ready: [[u64; 32]; 2],
    pend: [[PendKind; 32]; 2],
    /// Single-issue occupancy: the cycle the issue slot frees up.
    issue_free_at: u64,
    /// Unpipelined divide unit.
    div_busy_until: u64,
    stats: CoreStats,
}

impl Lane {
    /// Creates lane `core` with the given geometry and input-queue depth.
    pub fn new(core: u8, regmap: RegMap, inq_depth: usize) -> Self {
        Lane {
            core,
            regmap,
            inq: VecDeque::new(),
            inq_depth,
            ready: [[0; 32]; 2],
            pend: [[PendKind::Alu; 32]; 2],
            issue_free_at: 0,
            div_busy_until: 0,
            stats: CoreStats::default(),
        }
    }

    /// This lane's core index.
    pub fn core(&self) -> u8 {
        self.core
    }

    /// Accumulated statistics (Figure 7 breakdown).
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// True if the lane can accept one more micro-op this cycle.
    pub fn can_accept(&self) -> bool {
        self.inq.len() < self.inq_depth
    }

    /// Delivers a broadcast micro-op.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (the VCU must check
    /// [`Lane::can_accept`] on every lane before broadcasting).
    pub fn receive(&mut self, uop: Uop) {
        assert!(self.can_accept(), "lane {} uop queue overflow", self.core);
        self.inq.push_back(uop);
    }

    /// True when the lane holds no work.
    pub fn idle(&self) -> bool {
        self.inq.is_empty()
    }

    fn chime_idx(chime: u8) -> usize {
        usize::from(chime.min(1))
    }

    /// Checks the head micro-op's sources; on failure reports the stall
    /// kind charged this cycle and the cycle the failing source becomes
    /// ready (the first not-ready source in operand order decides both).
    fn srcs_ready(&self, uop: &Uop, now: u64) -> Result<(), (StallKind, u64)> {
        let k = Self::chime_idx(uop.chime);
        for src in uop.sources() {
            let r = self.ready[k][src as usize];
            if r > now {
                let kind = match self.pend[k][src as usize] {
                    PendKind::Mem => StallKind::RawMem,
                    PendKind::Llfu | PendKind::Alu => StallKind::RawLlfu,
                    PendKind::Xelem => StallKind::Xelem,
                };
                return Err((kind, r));
            }
        }
        Ok(())
    }

    fn set_dest(&mut self, chime: u8, reg: u8, at: u64, kind: PendKind) {
        let k = Self::chime_idx(chime);
        self.ready[k][reg as usize] = at;
        self.pend[k][reg as usize] = kind;
    }

    /// Advances the lane one cycle, pushing completion events to `out`.
    pub fn tick(&mut self, now: u64, env: &LaneEnv<'_>, out: &mut Vec<TimedEvent>) {
        // Still occupied by a multi-cycle micro-op: that's useful work.
        if now < self.issue_free_at {
            self.stats.account(StallKind::Busy);
            return;
        }
        let Some(uop) = self.inq.front() else {
            self.stats.account(if env.vcu_busy {
                StallKind::Simd
            } else {
                StallKind::Misc
            });
            return;
        };

        // RAW hazards on this lane's register slice.
        if let Err((kind, _)) = self.srcs_ready(uop, now) {
            self.stats.account(kind);
            return;
        }

        let elems = self.regmap.elems_on(self.core, uop.chime, uop.vl, uop.sew);

        match uop.kind.clone() {
            UopKind::Arith { op, dst, .. } => {
                let (occ, lat) = self.arith_cost(op, elems);
                if op == VArithOp::Div || op == VArithOp::Divu || op == VArithOp::Rem {
                    if self.div_busy_until > now {
                        self.stats.account(StallKind::Struct);
                        return;
                    }
                    self.div_busy_until = now + occ + u64::from(lat);
                }
                self.issue_free_at = now + occ;
                let kind = if vector_op_latency(op) > LAT_ALU {
                    PendKind::Llfu
                } else {
                    PendKind::Alu
                };
                self.set_dest(uop.chime, dst, now + occ - 1 + u64::from(lat), kind);
            }
            UopKind::LoadWb { mem_id, dst } => {
                if !env.vmu.load_ready(mem_id, now) {
                    self.stats.account(StallKind::RawMem);
                    return;
                }
                self.issue_free_at = now + 1;
                self.set_dest(uop.chime, dst, now + 1, PendKind::Mem);
                out.push(TimedEvent {
                    at: now + 1,
                    event: LaneEvent::LoadWbDone { mem_id },
                });
            }
            UopKind::StoreRd { mem_id, .. } => {
                let occ = u64::from(elems.max(1));
                self.issue_free_at = now + occ;
                out.push(TimedEvent {
                    at: now + occ,
                    event: LaneEvent::StoreSent { mem_id },
                });
            }
            UopKind::IdxRd { mem_id, .. } => {
                let occ = u64::from(elems.max(1));
                self.issue_free_at = now + occ;
                out.push(TimedEvent {
                    at: now + occ,
                    event: LaneEvent::IdxSent { mem_id },
                });
            }
            UopKind::VxRead { vx_id, .. } => {
                let occ = u64::from(elems.max(1));
                self.issue_free_at = now + occ;
                out.push(TimedEvent {
                    at: now + occ,
                    event: LaneEvent::VxReadDone { vx_id },
                });
            }
            UopKind::VxWrite { vx_id, dst } => {
                if !env.vxu.ready(vx_id, now) {
                    self.stats.account(StallKind::Xelem);
                    return;
                }
                let occ = u64::from(elems.max(1));
                self.issue_free_at = now + occ;
                self.set_dest(uop.chime, dst, now + occ, PendKind::Xelem);
                out.push(TimedEvent {
                    at: now + occ,
                    event: LaneEvent::VxConsumed { vx_id },
                });
            }
            UopKind::VxReduce { vx_id, op, dst } => {
                if !env.vxu.ready(vx_id, now) {
                    self.stats.account(StallKind::Xelem);
                    return;
                }
                // One element arrives per cycle from the ring; each is fed
                // to the FU. Total vl elements plus the final step latency.
                let occ = u64::from(uop.vl.max(1)) + u64::from(reduction_step_latency(op));
                self.issue_free_at = now + occ;
                self.set_dest(uop.chime, dst, now + occ, PendKind::Xelem);
                out.push(TimedEvent {
                    at: now + occ,
                    event: LaneEvent::VxConsumed { vx_id },
                });
            }
        }

        self.inq.pop_front();
        self.stats.retired += 1;
        self.stats.account(StallKind::Busy);
    }

    /// The lane's self-assessment for the tick-skip engine, mirroring
    /// [`Lane::tick`]'s decision tree exactly: `Active` when a tick would
    /// issue the head micro-op, otherwise the stall kind each skipped tick
    /// would record, bounded by the earliest internally-known wake-up
    /// (`None` when the wake comes from an engine event or a memory
    /// response instead).
    pub fn quiescence(&self, now: u64, env: &LaneEnv<'_>) -> Quiescence {
        if now < self.issue_free_at {
            return Quiescence::Idle {
                until: Some(self.issue_free_at),
                account: Some(StallKind::Busy),
            };
        }
        let Some(uop) = self.inq.front() else {
            let kind = if env.vcu_busy {
                StallKind::Simd
            } else {
                StallKind::Misc
            };
            // Wakes only when the VCU broadcasts (an engine-level event).
            return Quiescence::Idle {
                until: None,
                account: Some(kind),
            };
        };
        if let Err((kind, ready_at)) = self.srcs_ready(uop, now) {
            // The first failing source decides the charged kind; once it
            // resolves the charge may change, so the window ends there.
            return Quiescence::Idle {
                until: Some(ready_at),
                account: Some(kind),
            };
        }
        match uop.kind {
            UopKind::Arith { op, .. }
                if (op == VArithOp::Div || op == VArithOp::Divu || op == VArithOp::Rem)
                    && self.div_busy_until > now =>
            {
                Quiescence::Idle {
                    until: Some(self.div_busy_until),
                    account: Some(StallKind::Struct),
                }
            }
            UopKind::LoadWb { mem_id, .. } if !env.vmu.load_ready(mem_id, now) => {
                // Delivery time is known once the VLU has scheduled the
                // last line; before that the wake is a bank response.
                Quiescence::Idle {
                    until: env.vmu.load_ready_at(mem_id).filter(|&t| t > now),
                    account: Some(StallKind::RawMem),
                }
            }
            UopKind::VxWrite { vx_id, .. } | UopKind::VxReduce { vx_id, .. }
                if !env.vxu.ready(vx_id, now) =>
            {
                // The ring's delivery time is known once all reads are in;
                // before that the wake is a lane `VxReadDone` event.
                Quiescence::Idle {
                    until: env.vxu.ready_at(vx_id).filter(|&t| t > now),
                    account: Some(StallKind::Xelem),
                }
            }
            _ => Quiescence::Active,
        }
    }

    /// (occupancy cycles, result latency) of an arithmetic micro-op on
    /// `elems` packed elements.
    fn arith_cost(&self, op: VArithOp, elems: u32) -> (u64, u32) {
        let lat = vector_op_latency(op);
        if lat <= LAT_ALU || !self.regmap.packed {
            // Simple ops process the whole packed register in one cycle
            // (paper: small ALU changes); unpacked registers hold one
            // element anyway.
            (1, lat)
        } else {
            // Long-latency ops serialize packed elements (paper: avoid
            // non-trivial area in the little cores).
            (u64::from(elems.max(1)), lat)
        }
    }

    /// Applies the accounting `cycles` skipped quiescent ticks would have
    /// performed: one cycle of `kind` each (see [`Lane::quiescence`]).
    pub fn skip_idle(&mut self, cycles: u64, kind: StallKind) {
        self.stats.account_many(kind, cycles);
    }

    /// Worst-case divide latency exposure (used by tests).
    pub fn div_busy_until(&self) -> u64 {
        self.div_busy_until
    }

    /// Appends the lane's mutable state to a checkpoint. Configuration
    /// (`core`, `regmap`, `inq_depth`) is not written.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.inq.save(w);
        self.ready.save(w);
        self.pend.save(w);
        self.issue_free_at.save(w);
        self.div_busy_until.save(w);
        self.stats.save(w);
    }

    /// Restores state written by [`Lane::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input or a micro-op queue
    /// deeper than this lane's configuration allows.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let inq: VecDeque<Uop> = Snap::load(r)?;
        if inq.len() > self.inq_depth {
            return Err(SnapError::Corrupt {
                what: format!(
                    "checkpoint lane queue holds {} uops, lane takes {}",
                    inq.len(),
                    self.inq_depth
                ),
            });
        }
        self.inq = inq;
        self.ready = Snap::load(r)?;
        self.pend = Snap::load(r)?;
        self.issue_free_at = Snap::load(r)?;
        self.div_busy_until = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }

    /// The divide-unit latency constant (re-exported for tests).
    pub const DIV_LATENCY: u32 = LAT_DIV;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmu::VmuParams;
    use crate::vxu::VxuParams;
    use bvl_isa::vcfg::Sew;

    fn env<'a>(vmu: &'a Vmu, vxu: &'a Vxu, busy: bool) -> LaneEnv<'a> {
        LaneEnv {
            vmu,
            vxu,
            vcu_busy: busy,
        }
    }

    fn uop(chime: u8, kind: UopKind) -> Uop {
        Uop {
            seq: 1,
            chime,
            vl: 16,
            sew: Sew::E32,
            masked: false,
            kind,
        }
    }

    fn add_uop(chime: u8, dst: u8, srcs: Vec<u8>) -> Uop {
        uop(
            chime,
            UopKind::Arith {
                op: VArithOp::Add,
                srcs,
                dst,
            },
        )
    }

    fn fixtures() -> (Vmu, Vxu) {
        (
            Vmu::new(4, VmuParams::default()),
            Vxu::new(VxuParams::default()),
        )
    }

    #[test]
    fn empty_lane_attributes_simd_vs_misc() {
        let (vmu, vxu) = fixtures();
        let mut lane = Lane::new(0, RegMap::paper_default(), 2);
        lane.tick(0, &env(&vmu, &vxu, true), &mut Vec::new());
        lane.tick(1, &env(&vmu, &vxu, false), &mut Vec::new());
        assert_eq!(lane.stats().of(StallKind::Simd), 1);
        assert_eq!(lane.stats().of(StallKind::Misc), 1);
    }

    #[test]
    fn simple_add_is_single_cycle() {
        let (vmu, vxu) = fixtures();
        let mut lane = Lane::new(0, RegMap::paper_default(), 2);
        lane.receive(add_uop(0, 3, vec![1, 2]));
        lane.receive(add_uop(0, 4, vec![1, 2]));
        lane.tick(0, &env(&vmu, &vxu, true), &mut Vec::new());
        lane.tick(1, &env(&vmu, &vxu, true), &mut Vec::new());
        assert_eq!(lane.stats().retired, 2);
        assert_eq!(lane.stats().of(StallKind::Busy), 2);
    }

    #[test]
    fn dependent_fmul_stalls_raw_llfu() {
        let (vmu, vxu) = fixtures();
        let mut lane = Lane::new(0, RegMap::paper_default(), 2);
        lane.receive(uop(
            0,
            UopKind::Arith {
                op: VArithOp::FMul,
                srcs: vec![1, 2],
                dst: 3,
            },
        ));
        lane.receive(add_uop(0, 4, vec![3, 1])); // reads v3
        let mut t = 0;
        while lane.stats().retired < 2 {
            lane.tick(t, &env(&vmu, &vxu, true), &mut Vec::new());
            t += 1;
            assert!(t < 100);
        }
        assert!(lane.stats().of(StallKind::RawLlfu) > 0);
        // FMul serializes 2 packed elements: occupancy 2 on this lane.
        assert!(t > 3);
    }

    #[test]
    fn packed_simple_op_processes_in_one_cycle_but_fp_serializes() {
        let (vmu, vxu) = fixtures();
        let map = RegMap::paper_default(); // 2 elems/reg at e32
        let mut lane = Lane::new(0, map, 2);
        // Independent FMul then Add: FMul occupies 2 cycles (packed
        // serialization); Add issues after.
        lane.receive(uop(
            0,
            UopKind::Arith {
                op: VArithOp::FMul,
                srcs: vec![1, 2],
                dst: 3,
            },
        ));
        lane.receive(add_uop(0, 5, vec![1, 2]));
        lane.tick(0, &env(&vmu, &vxu, true), &mut Vec::new()); // FMul issues, occ 2
        lane.tick(1, &env(&vmu, &vxu, true), &mut Vec::new()); // busy (occupied)
        assert_eq!(lane.stats().retired, 1);
        lane.tick(2, &env(&vmu, &vxu, true), &mut Vec::new()); // Add issues
        assert_eq!(lane.stats().retired, 2);
    }

    #[test]
    fn load_writeback_waits_for_vlu_data() {
        let (vmu, vxu) = fixtures();
        let mut lane = Lane::new(0, RegMap::paper_default(), 2);
        lane.receive(uop(0, UopKind::LoadWb { mem_id: 9, dst: 1 }));
        lane.tick(0, &env(&vmu, &vxu, true), &mut Vec::new());
        assert_eq!(lane.stats().of(StallKind::RawMem), 1);
        assert_eq!(lane.stats().retired, 0);
    }

    #[test]
    fn vxwrite_waits_for_ring() {
        let (vmu, mut vxu) = fixtures();
        let mut lane = Lane::new(0, RegMap::paper_default(), 2);
        vxu.begin(5, 1, 4);
        lane.receive(uop(0, UopKind::VxWrite { vx_id: 5, dst: 2 }));
        lane.tick(0, &env(&vmu, &vxu, true), &mut Vec::new());
        assert_eq!(lane.stats().of(StallKind::Xelem), 1);
        vxu.read_done(5, 0);
        // ready at 0 + 4 + 2 = 6.
        let mut evs = Vec::new();
        lane.tick(6, &env(&vmu, &vxu, true), &mut evs);
        assert_eq!(evs.len(), 1);
        assert!(matches!(evs[0].event, LaneEvent::VxConsumed { vx_id: 5 }));
    }

    #[test]
    fn store_read_streams_one_element_per_cycle() {
        let (vmu, vxu) = fixtures();
        let mut lane = Lane::new(0, RegMap::paper_default(), 2);
        let mut u = uop(
            0,
            UopKind::StoreRd {
                mem_id: 3,
                src: 1,
                idx: None,
            },
        );
        u.vl = 8; // 2 elements on this lane's chime-0 register
        lane.receive(u);
        let mut evs = Vec::new();
        lane.tick(0, &env(&vmu, &vxu, true), &mut evs);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at, 2); // 2 elements, 1/cycle
    }

    #[test]
    fn zero_element_uop_completes_immediately() {
        let (vmu, vxu) = fixtures();
        // Lane 3, vl = 2: no elements land here, but the lock-step uop
        // still passes through (and VxRead must still report).
        let mut lane = Lane::new(3, RegMap::paper_default(), 2);
        let mut u = uop(0, UopKind::VxRead { vx_id: 1, src: 4 });
        u.vl = 2;
        lane.receive(u);
        let mut evs = Vec::new();
        lane.tick(0, &env(&vmu, &vxu, true), &mut evs);
        assert_eq!(evs.len(), 1);
        assert_eq!(lane.stats().retired, 1);
    }
}
