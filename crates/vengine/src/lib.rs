#![warn(missing_docs)]
//! # bvl-vengine — the VLITTLE decoupled vector engine
//!
//! The paper's primary contribution (section III): a cluster of little
//! cores reconfigured on demand into a decoupled vector engine. This crate
//! models every added component:
//!
//! * [`regmap`] — mapping of vector-register elements onto the little
//!   cores' scalar integer and floating-point physical registers, with
//!   multiple element groups (*chimes*) and packed sub-word elements
//!   (Figure 2).
//! * [`uop`] — the micro-operations the VCU broadcasts to the lanes.
//! * [`vcu`] — the vector control unit: UopQ/DataQ, per-chime micro-op
//!   expansion, the pipelined broadcast bus, and lock-step issue.
//! * [`lane`] — a little core's back-end operating as a vector lane:
//!   in-order micro-op issue, per-chime register scoreboard, packed-element
//!   serialization on long-latency units, and the paper's Figure 7 stall
//!   taxonomy.
//! * [`vxu`] — the cross-element unit: a pipelined unidirectional ring
//!   processing one permutation/reduction at a time.
//! * [`vmu`] — the vector memory unit: VMIU (line-request generation and
//!   index coalescing), per-bank VMSUs (store-address CAM and repurposed
//!   L1I-SRAM data FIFOs), VLU (load data delivery) and VSU (store line
//!   assembly).
//! * [`engine`] — [`VLittleEngine`], composing the above behind the
//!   [`bvl_core::VectorEngine`] interface consumed by the big core.
//!
//! The engine's hardware vector length follows its profile: with four
//! lanes, two chimes and packed 32-bit elements it is 512 bits — exactly
//! the paper's `1b-4VL` configuration.

pub mod engine;
pub mod lane;
pub mod regmap;
pub mod uop;
pub mod vcu;
pub mod vmu;
pub mod vxu;

pub use engine::{EngineParams, VLittleEngine};
pub use regmap::{ElemLoc, RegFile, RegMap};
