//! Property-based tests for the VLITTLE engine: register-mapping
//! bijectivity across all geometries, element accounting, expansion
//! invariants, and end-to-end functional equivalence of random vector
//! programs run through the full engine.

use bvl_core::big::{BigCore, BigParams};
use bvl_core::fetch::TEXT_BASE;
use bvl_core::types::VectorEngine;
use bvl_isa::asm::Assembler;
use bvl_isa::exec::Machine;
use bvl_isa::reg::{VReg, XReg};
use bvl_isa::vcfg::Sew;
use bvl_mem::{HierConfig, MemHierarchy, SharedMem, SimMemory};
use bvl_vengine::regmap::RegMap;
use bvl_vengine::{EngineParams, VLittleEngine};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn regmap_strategy() -> impl Strategy<Value = RegMap> {
    (1u8..=8, 1u8..=2, any::<bool>()).prop_map(|(cores, chimes, packed)| RegMap {
        cores,
        chimes,
        packed,
    })
}

proptest! {
    /// Element locations are unique (no two elements share a physical
    /// register slot) and exhaustive for every geometry and element width.
    #[test]
    fn regmap_is_bijective(map in regmap_strategy(), v in 1u8..32) {
        for sew in [Sew::E8, Sew::E16, Sew::E32, Sew::E64] {
            let vlmax = map.vlmax(sew);
            let mut seen = HashSet::new();
            for e in 0..vlmax {
                let loc = map.locate(v, e, sew);
                prop_assert!(loc.core < map.cores);
                prop_assert!(loc.chime < map.chimes);
                prop_assert!(
                    seen.insert((loc.core, loc.chime, loc.subslot)),
                    "collision at element {e} ({sew})"
                );
            }
        }
    }

    /// `elems_on` partitions every vl exactly across (core, chime) pairs.
    #[test]
    fn elems_on_partitions_vl(map in regmap_strategy(), frac in 0.0f64..=1.0) {
        let sew = Sew::E32;
        let vl = ((map.vlmax(sew) as f64) * frac).round() as u32;
        let total: u32 = (0..map.cores)
            .flat_map(|c| (0..map.chimes).map(move |k| map.elems_on(c, k, vl, sew)))
            .sum();
        prop_assert_eq!(total, vl);
    }

    /// A random strip-mined element-wise vector program produces the same
    /// memory image through the full big-core + VLITTLE timing stack as on
    /// the golden machine directly.
    #[test]
    fn engine_matches_golden_machine(
        vals in proptest::collection::vec(1u32..1000, 4..48),
        ops in proptest::collection::vec(0u8..4, 1..4),
    ) {
        let n = vals.len() as u64;
        let mut mem = SimMemory::default();
        let a_base = mem.alloc_u32(&vals);
        let out_base = mem.alloc(n * 4, 64);

        let (rn, ra, ro, rvl, rb) = (
            XReg::new(10),
            XReg::new(11),
            XReg::new(12),
            XReg::new(14),
            XReg::new(15),
        );
        let mut asm = Assembler::new();
        asm.li(rn, n as i64);
        asm.li(ra, a_base as i64);
        asm.li(ro, out_base as i64);
        asm.label("strip");
        asm.vsetvli(rvl, rn, Sew::E32);
        asm.vle(VReg::new(1), ra);
        for op in &ops {
            match op {
                0 => { asm.vadd_vv(VReg::new(1), VReg::new(1), VReg::new(1)); }
                1 => { asm.vsll_vi(VReg::new(1), VReg::new(1), 1); }
                2 => { asm.vmax_vx(VReg::new(1), VReg::new(1), XReg::ZERO); }
                _ => { asm.vmul_vv(VReg::new(1), VReg::new(1), VReg::new(1)); }
            }
        }
        asm.vse(VReg::new(1), ro);
        asm.slli(rb, rvl, 2);
        asm.add(ra, ra, rb);
        asm.add(ro, ro, rb);
        asm.sub(rn, rn, rvl);
        asm.bne(rn, XReg::ZERO, "strip");
        asm.vmfence();
        asm.halt();
        let prog = Arc::new(asm.assemble().expect("assembles"));

        // Golden run.
        let mut golden = Machine::new(mem.clone(), 512);
        golden.run(&prog, 100_000_000).expect("golden runs");

        // Full timing stack.
        let shared = SharedMem::new(mem);
        let mut hier = MemHierarchy::new(HierConfig::with_little(4));
        hier.set_vector_mode(true);
        let mut engine = VLittleEngine::new(EngineParams::paper_default(), hier.line_bytes());
        let mut big = BigCore::new(
            shared.clone(),
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            engine.vlen_bits(),
            BigParams::default(),
        );
        big.assign(0);
        let mut finished = false;
        for t in 0..5_000_000u64 {
            hier.tick(t);
            engine.tick(t, &mut hier);
            big.tick(t, &mut hier, Some(&mut engine));
            if big.done() && engine.idle() {
                finished = true;
                break;
            }
        }
        prop_assert!(finished, "engine run did not complete");
        for i in 0..n {
            let addr = out_base + i * 4;
            let got = shared.with(|m| bvl_isa::mem::Memory::read_uint(m, addr, 4));
            let want = bvl_isa::mem::Memory::read_uint(golden.mem(), addr, 4);
            prop_assert_eq!(got, want, "element {}", i);
        }
    }
}
