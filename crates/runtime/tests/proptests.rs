//! Property-based tests for the work-stealing runtime: exactly-once
//! delivery under arbitrary worker interleavings, overhead accounting,
//! and parallel-for range coverage.

use bvl_isa::reg::XReg;
use bvl_runtime::{parallel_for_tasks, Fetched, RuntimeParams, Task, WorkStealing};
use proptest::prelude::*;

proptest! {
    /// Every seeded task is handed out exactly once no matter how workers
    /// interleave their fetches.
    #[test]
    fn exactly_once_delivery(
        n_tasks in 1usize..200,
        workers in 1usize..8,
        order in proptest::collection::vec(0usize..8, 0..600),
    ) {
        let mut ws = WorkStealing::new(workers, RuntimeParams::default());
        ws.seed_tasks(
            (0..n_tasks)
                .map(|i| Task {
                    scalar_pc: i as u32,
                    vector_pc: None,
                    args: Vec::new(),
                })
                .collect(),
        );
        let mut got = vec![false; n_tasks];
        // Follow the random interleaving, then round-robin to drain.
        let schedule = order
            .into_iter()
            .map(|w| w % workers)
            .chain((0..workers).cycle().take(n_tasks * workers * 4 + 16));
        for w in schedule {
            match ws.fetch(w) {
                Fetched::Task { index, .. } => {
                    prop_assert!(!got[index], "task {index} delivered twice");
                    got[index] = true;
                }
                Fetched::Empty { .. } => {}
                Fetched::Finished => {
                    if ws.drained() {
                        break;
                    }
                }
            }
        }
        prop_assert!(got.iter().all(|&g| g), "not all tasks delivered");
        prop_assert_eq!(ws.stats().tasks_run, n_tasks as u64);
    }

    /// Scheduling overhead grows monotonically with the number of fetches.
    #[test]
    fn overhead_accounting(n_tasks in 1usize..50) {
        let mut ws = WorkStealing::new(2, RuntimeParams::default());
        ws.seed_tasks(
            (0..n_tasks)
                .map(|i| Task {
                    scalar_pc: i as u32,
                    vector_pc: None,
                    args: Vec::new(),
                })
                .collect(),
        );
        let mut last = 0;
        for w in (0..2).cycle().take(n_tasks * 8) {
            let _ = ws.fetch(w);
            let oh = ws.stats().overhead_cycles;
            prop_assert!(oh >= last);
            last = oh;
            if ws.drained() {
                break;
            }
        }
        prop_assert!(last >= ws.stats().tasks_run * RuntimeParams::default().pop_cost);
    }

    /// `parallel_for_tasks` tiles `[0, n)` exactly: contiguous, ordered,
    /// non-overlapping, fully covering.
    #[test]
    fn parallel_for_covers(n in 1u64..10_000, chunk in 1u64..512) {
        let tasks = parallel_for_tasks(n, chunk, 0, None, XReg::new(10), XReg::new(11), &[]);
        let mut expect_start = 0;
        for t in &tasks {
            let (s, e) = (t.args[0].1, t.args[1].1);
            prop_assert_eq!(s, expect_start);
            prop_assert!(e > s && e - s <= chunk);
            expect_start = e;
        }
        prop_assert_eq!(expect_start, n);
    }
}
