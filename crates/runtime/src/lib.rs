#![warn(missing_docs)]
//! # bvl-runtime — work-stealing task-runtime model
//!
//! The paper parallelizes task-parallel applications with a TBB/Cilk-style
//! runtime implementing *random work stealing* (section IV-B), and relies
//! on it to distribute data-parallel tasks across the heterogeneous cores
//! of `1bIV-4L` — where a task landing on the big core runs its
//! *vectorized* variant and a task landing on a little core runs its
//! *scalar* variant.
//!
//! This crate models that runtime at the scheduling level: per-worker
//! Chase-Lev-style deques of task descriptors, owner pops from the bottom,
//! thieves steal from the top of a (deterministically) random victim, and
//! every scheduling action costs simulated cycles that the system charges
//! to the worker before the task body starts. The task bodies themselves
//! are instruction streams executed by the simulated cores.

use bvl_isa::reg::XReg;
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// A task: an entry point (plus optional vectorized variant) and its
/// argument registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// Entry instruction index of the scalar variant.
    pub scalar_pc: u32,
    /// Entry of the vectorized variant, if the kernel has one.
    pub vector_pc: Option<u32>,
    /// Argument registers written before the task starts.
    pub args: Vec<(XReg, u64)>,
}

impl Task {
    /// Picks the entry point for a worker with (or without) vector
    /// support — the paper's runtime dispatches the vectorized variant to
    /// the big core and the scalar variant to little cores.
    pub fn entry(&self, vector_capable: bool) -> u32 {
        if vector_capable {
            self.vector_pc.unwrap_or(self.scalar_pc)
        } else {
            self.scalar_pc
        }
    }
}

snap_struct!(Task {
    scalar_pc,
    vector_pc,
    args,
});

/// Cycle costs of runtime actions.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeParams {
    /// Popping a task from the worker's own deque.
    pub pop_cost: u64,
    /// A successful steal (victim selection + CAS + transfer).
    pub steal_cost: u64,
    /// A failed steal attempt (empty victim).
    pub steal_fail_cost: u64,
}

impl Default for RuntimeParams {
    fn default() -> Self {
        RuntimeParams {
            pop_cost: 10,
            steal_cost: 60,
            steal_fail_cost: 25,
        }
    }
}

/// Runtime statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks executed.
    pub tasks_run: u64,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts.
    pub failed_steals: u64,
    /// Total scheduling-overhead cycles charged.
    pub overhead_cycles: u64,
}

impl RuntimeStats {
    /// Registers every counter under `scope` (conventionally
    /// `sys.runtime`).
    pub fn register(&self, scope: &mut bvl_obs::Scope<'_>) {
        scope.set("tasks_run", self.tasks_run);
        scope.set("steals", self.steals);
        scope.set("failed_steals", self.failed_steals);
        scope.set("overhead_cycles", self.overhead_cycles);
    }
}

snap_struct!(RuntimeStats {
    tasks_run,
    steals,
    failed_steals,
    overhead_cycles,
});

/// What a worker gets when it asks for work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fetched {
    /// A task plus the scheduling overhead to charge before it starts.
    Task {
        /// Index into the runtime's task table.
        index: usize,
        /// Cycles of scheduling overhead.
        overhead: u64,
    },
    /// No work anywhere: the worker should retry after `backoff` cycles.
    Empty {
        /// Cycles before the next attempt.
        backoff: u64,
    },
    /// All tasks have been handed out.
    Finished,
}

/// The work-stealing scheduler model.
///
/// ```
/// use bvl_runtime::{Fetched, RuntimeParams, Task, WorkStealing};
///
/// let mut ws = WorkStealing::new(2, RuntimeParams::default());
/// ws.seed_tasks(vec![Task { scalar_pc: 7, vector_pc: None, args: vec![] }]);
/// match ws.fetch(0) {
///     Fetched::Task { index, overhead } => {
///         assert_eq!(ws.task(index).scalar_pc, 7);
///         assert!(overhead > 0); // scheduling costs simulated cycles
///     }
///     other => panic!("expected a task, got {other:?}"),
/// }
/// assert!(ws.drained());
/// ```
#[derive(Clone, Debug)]
pub struct WorkStealing {
    params: RuntimeParams,
    tasks: Vec<Task>,
    deques: Vec<VecDeque<usize>>,
    remaining: usize,
    rng: u64,
    stats: RuntimeStats,
}

impl WorkStealing {
    /// Creates a scheduler for `workers` workers with the given costs.
    pub fn new(workers: usize, params: RuntimeParams) -> Self {
        WorkStealing {
            params,
            tasks: Vec::new(),
            deques: vec![VecDeque::new(); workers],
            remaining: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            stats: RuntimeStats::default(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The task table.
    pub fn task(&self, index: usize) -> &Task {
        &self.tasks[index]
    }

    /// Seeds the bag of tasks, distributed round-robin across workers (the
    /// paper's `parallel_for` initial split).
    pub fn seed_tasks(&mut self, tasks: Vec<Task>) {
        let w = self.deques.len();
        for (i, _) in tasks.iter().enumerate() {
            self.deques[i % w].push_back(self.tasks.len() + i);
        }
        self.remaining += tasks.len();
        self.tasks.extend(tasks);
    }

    /// Pushes a dynamically spawned task onto `worker`'s own deque.
    pub fn spawn(&mut self, worker: usize, task: Task) {
        let idx = self.tasks.len();
        self.tasks.push(task);
        self.deques[worker].push_back(idx);
        self.remaining += 1;
    }

    /// True once every task has been handed out.
    pub fn drained(&self) -> bool {
        self.remaining == 0
    }

    fn xorshift(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// A worker asks for its next task.
    pub fn fetch(&mut self, worker: usize) -> Fetched {
        if self.remaining == 0 {
            return Fetched::Finished;
        }
        // Own deque first (LIFO bottom for locality).
        if let Some(index) = self.deques[worker].pop_back() {
            self.remaining -= 1;
            self.stats.tasks_run += 1;
            self.stats.overhead_cycles += self.params.pop_cost;
            return Fetched::Task {
                index,
                overhead: self.params.pop_cost,
            };
        }
        // Steal from a random victim's top (FIFO).
        let w = self.deques.len();
        if w > 1 {
            let victim = (self.xorshift() as usize) % w;
            if victim != worker {
                if let Some(index) = self.deques[victim].pop_front() {
                    self.remaining -= 1;
                    self.stats.tasks_run += 1;
                    self.stats.steals += 1;
                    self.stats.overhead_cycles += self.params.steal_cost;
                    return Fetched::Task {
                        index,
                        overhead: self.params.steal_cost,
                    };
                }
            }
        }
        self.stats.failed_steals += 1;
        self.stats.overhead_cycles += self.params.steal_fail_cost;
        Fetched::Empty {
            backoff: self.params.steal_fail_cost,
        }
    }

    /// Appends the scheduler's mutable state — task table, deques, the
    /// deterministic xorshift state and stats — to a checkpoint (`params`
    /// is configuration and not written).
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.tasks.save(w);
        self.deques.save(w);
        self.remaining.save(w);
        self.rng.save(w);
        self.stats.save(w);
    }

    /// Restores state written by [`WorkStealing::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input or a worker count not
    /// matching this scheduler's configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.tasks = Snap::load(r)?;
        let deques: Vec<VecDeque<usize>> = Snap::load(r)?;
        if deques.len() != self.deques.len() {
            return Err(SnapError::Corrupt {
                what: format!(
                    "checkpoint has {} worker deques, scheduler has {}",
                    deques.len(),
                    self.deques.len()
                ),
            });
        }
        self.deques = deques;
        self.remaining = Snap::load(r)?;
        self.rng = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

/// Builds a `parallel_for`-style task bag over `[0, n)` in chunks of
/// `chunk`, passing `(start, end)` in the given registers.
pub fn parallel_for_tasks(
    n: u64,
    chunk: u64,
    scalar_pc: u32,
    vector_pc: Option<u32>,
    start_reg: XReg,
    end_reg: XReg,
    extra_args: &[(XReg, u64)],
) -> Vec<Task> {
    assert!(chunk > 0, "chunk must be positive");
    let mut tasks = Vec::new();
    let mut s = 0;
    while s < n {
        let e = (s + chunk).min(n);
        let mut args = vec![(start_reg, s), (end_reg, e)];
        args.extend_from_slice(extra_args);
        tasks.push(Task {
            scalar_pc,
            vector_pc,
            args,
        });
        s = e;
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(pc: u32) -> Task {
        Task {
            scalar_pc: pc,
            vector_pc: None,
            args: Vec::new(),
        }
    }

    #[test]
    fn all_tasks_handed_out_exactly_once() {
        let mut ws = WorkStealing::new(4, RuntimeParams::default());
        ws.seed_tasks((0..100).map(t).collect());
        let mut got = [false; 100];
        let mut finished = 0;
        let mut guard = 0;
        while finished < 4 {
            for w in 0..4 {
                match ws.fetch(w) {
                    Fetched::Task { index, .. } => {
                        assert!(!got[index], "task {index} handed out twice");
                        got[index] = true;
                    }
                    Fetched::Empty { .. } => {}
                    Fetched::Finished => finished += 1,
                }
            }
            guard += 1;
            assert!(guard < 10_000);
            if ws.drained() {
                finished = 4;
            }
        }
        assert!(got.iter().all(|&g| g));
        assert_eq!(ws.stats().tasks_run, 100);
    }

    #[test]
    fn idle_worker_steals() {
        let mut ws = WorkStealing::new(2, RuntimeParams::default());
        // All tasks seeded, but worker 1 exhausts its half then steals.
        ws.seed_tasks((0..10).map(t).collect());
        let mut steals = 0;
        let mut done = 0;
        let mut guard = 0;
        while done < 10 {
            if let Fetched::Task { .. } = ws.fetch(1) {
                done += 1;
            } else {
                steals += 1;
            }
            guard += 1;
            assert!(guard < 1000);
        }
        let _ = steals;
        assert!(ws.stats().steals > 0, "worker 1 never stole");
    }

    #[test]
    fn steal_costs_more_than_pop() {
        let p = RuntimeParams::default();
        assert!(p.steal_cost > p.pop_cost);
    }

    #[test]
    fn parallel_for_covers_range() {
        let tasks = parallel_for_tasks(
            100,
            32,
            5,
            Some(50),
            XReg::new(10),
            XReg::new(11),
            &[(XReg::new(12), 7)],
        );
        assert_eq!(tasks.len(), 4);
        assert_eq!(tasks[0].args[0], (XReg::new(10), 0));
        assert_eq!(tasks[0].args[1], (XReg::new(11), 32));
        assert_eq!(tasks[3].args[1], (XReg::new(11), 100));
        assert_eq!(tasks[0].args[2], (XReg::new(12), 7));
        assert_eq!(tasks[0].entry(true), 50);
        assert_eq!(tasks[0].entry(false), 5);
    }

    #[test]
    fn spawn_adds_work() {
        let mut ws = WorkStealing::new(1, RuntimeParams::default());
        ws.seed_tasks(vec![t(1)]);
        ws.spawn(0, t(2));
        assert!(!ws.drained());
        let mut n = 0;
        while let Fetched::Task { .. } = ws.fetch(0) {
            n += 1;
        }
        assert_eq!(n, 2);
        assert!(ws.drained());
    }
}
