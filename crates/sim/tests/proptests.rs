//! Property-based tests over the full system: any clock configuration
//! completes with verified results, slower clocks never make things
//! faster, and the task runtime is work-conserving.

use bvl_sim::{simulate, SimParams, SystemKind};
use bvl_workloads::{kernels::vvadd, Scale};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any frequency combination on any system completes and verifies.
    #[test]
    fn any_clocks_complete_and_check(
        big_step in 0usize..4,
        little_step in 0usize..4,
        system in 0usize..7,
    ) {
        let big = [0.8, 1.0, 1.2, 1.4][big_step];
        let little = [0.6, 0.8, 1.0, 1.2][little_step];
        let kind = SystemKind::ALL[system];
        let w = vvadd::build(Scale::tiny());
        let mut params = SimParams::default();
        params.clocks.big_ghz = big;
        params.clocks.little_ghz = little;
        let r = simulate(kind, &w, &params);
        prop_assert!(r.is_ok(), "{}: {:?}", kind.label(), r.err());
    }

    /// Raising the little-cluster clock never slows 1b-4VL down (weak
    /// monotonicity of the DVFS model on the vector path).
    #[test]
    fn faster_littles_never_hurt_vlittle(step in 0usize..3) {
        let freqs = [0.6, 0.8, 1.0, 1.2];
        let w = vvadd::build(Scale::tiny());
        let run = |l: f64| {
            let mut params = SimParams::default();
            params.clocks.little_ghz = l;
            simulate(SystemKind::B4Vl, &w, &params).expect("runs").wall_ns
        };
        let slow = run(freqs[step]);
        let fast = run(freqs[step + 1]);
        prop_assert!(
            fast <= slow * 1.001,
            "little {} -> {} GHz: {} -> {} ns",
            freqs[step],
            freqs[step + 1],
            slow,
            fast
        );
    }
}
