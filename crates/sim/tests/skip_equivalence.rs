//! Skip-equivalence suite: the quiescence-aware tick-skip engine must be
//! invisible in results.
//!
//! For every system kind and a representative set of workloads, a run
//! with tick skipping enabled must produce a [`RunResult`] that is
//! *byte-identical* to the naive cycle-by-cycle loop (`no_skip`) — every
//! cycle count, every stall-breakdown bucket, every cache counter, the
//! exact `wall_ns` bits.

use bvl_sim::{simulate_with_state, FinalState, RunResult, SimParams, SkipStats, SystemKind};
use bvl_workloads::{graph, kernels, Scale, Workload};

fn representative_workloads() -> Vec<Workload> {
    let s = Scale::tiny();
    vec![
        // Data-parallel kernels: vvadd is memory-bound, saxpy mixes FP
        // compute, mmult is compute-bound with reuse.
        kernels::vvadd::build(s),
        kernels::saxpy::build(s),
        kernels::mmult::build(s),
        // A task-parallel graph app exercises the work-stealing path.
        graph::bfs::build(s),
    ]
}

fn run(kind: SystemKind, w: &Workload, no_skip: bool) -> (RunResult, SkipStats, FinalState) {
    let params = SimParams {
        no_skip,
        ..SimParams::default()
    };
    simulate_with_state(kind, w, &params)
        .unwrap_or_else(|e| panic!("{} on {kind} (no_skip={no_skip}): {e}", w.name))
}

#[test]
fn skip_matches_naive_on_every_system() {
    let workloads = representative_workloads();
    let mut total_skipped = 0u64;
    for kind in SystemKind::ALL {
        for w in &workloads {
            let (naive, base_stats, naive_state) = run(kind, w, true);
            let (skipped, skip_stats, skipped_state) = run(kind, w, false);
            assert_eq!(
                base_stats.edges_skipped, 0,
                "no_skip run skipped edges on {kind}/{}",
                w.name
            );
            // Same total edge work, just batched.
            assert_eq!(
                base_stats.edges_run,
                skip_stats.edges_run + skip_stats.edges_skipped,
                "edge accounting diverged on {kind}/{}",
                w.name
            );
            assert_eq!(
                naive, skipped,
                "skip-on result diverged from naive on {kind}/{}",
                w.name
            );
            // Byte-level: the full debug rendering (every field, exact
            // float bits via Debug) must match too.
            assert_eq!(
                format!("{naive:?}"),
                format!("{skipped:?}"),
                "debug rendering diverged on {kind}/{}",
                w.name
            );
            // Architectural equivalence: not just the timing counters
            // but the final machine state — every register file, the
            // full memory image, and the drain certificates — must be
            // unaffected by tick skipping.
            assert!(
                naive_state.engine_drained && skipped_state.engine_drained,
                "engine not drained on {kind}/{}",
                w.name
            );
            assert_eq!(
                naive_state, skipped_state,
                "final architectural state diverged between skip-on and \
                 naive on {kind}/{}",
                w.name
            );
            total_skipped += skip_stats.edges_skipped;
        }
    }
    assert!(
        total_skipped > 0,
        "the suite never exercised a skipped window"
    );
}
