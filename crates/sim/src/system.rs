//! The composed system simulator.

use crate::config::{ClockConfig, SimParams, SystemKind};
use crate::result::RunResult;
use bvl_baseline::{dve_params, ivu_params, SimpleVecMachine};
use bvl_core::fetch::TEXT_BASE;
use bvl_core::types::{Quiescence, StallKind, VectorEngine};
use bvl_core::{BigCore, BigParams, LittleCore, LittleParams};
use bvl_isa::exec::ArchSnapshot;
use bvl_mem::{HierConfig, MemHierarchy, MemImage, PortId, SharedMem};
use bvl_obs::{trace, StatsRegistry, TraceLog};
use bvl_runtime::{Fetched, RuntimeParams, WorkStealing};
use bvl_vengine::VLittleEngine;
use bvl_workloads::{Workload, WorkloadClass};
use std::sync::Arc;

/// Ring-buffer capacity of a traced run: the first this-many events are
/// kept, later ones only counted (`TraceLog::dropped`) — a deterministic
/// truncation policy the golden-trace test relies on.
const TRACE_CAPACITY: usize = 1 << 16;

/// Tick-skip effectiveness counters for one run.
///
/// A side channel next to [`RunResult`] — deliberately **not** part of
/// it, so skip-on and skip-off runs stay byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Clock edges processed by the naive loop body.
    pub edges_run: u64,
    /// Clock edges batch-advanced by the quiescence engine.
    pub edges_skipped: u64,
    /// Number of batch advances (`edges_skipped / windows` is the mean
    /// window length — the amortization factor for planning cost).
    pub windows: u64,
}

impl SkipStats {
    /// Fraction of all clock edges that were skipped.
    pub fn skipped_frac(&self) -> f64 {
        let total = self.edges_run + self.edges_skipped;
        if total == 0 {
            0.0
        } else {
            self.edges_skipped as f64 / total as f64
        }
    }
}

/// Failed-plan backoff ramp cap: after repeated vetoes the planner rests
/// for up to `2^this` edge steps between attempts (see the loop comment).
const PLAN_BACKOFF_LOG_CAP: u32 = 3;

/// The attached vector engine, kept concrete for stats access.
enum Engine {
    None,
    VLittle(Box<VLittleEngine>),
    Simple(Box<SimpleVecMachine>),
}

impl Engine {
    fn as_dyn(&mut self) -> Option<&mut dyn VectorEngine> {
        match self {
            Engine::None => None,
            Engine::VLittle(e) => Some(e.as_mut()),
            Engine::Simple(e) => Some(e.as_mut()),
        }
    }

    fn vlen_bits(&self) -> u32 {
        match self {
            Engine::None => 64,
            Engine::VLittle(e) => e.vlen_bits(),
            Engine::Simple(e) => e.vlen_bits(),
        }
    }

    fn idle(&self) -> bool {
        match self {
            Engine::None => true,
            Engine::VLittle(e) => e.idle(),
            Engine::Simple(e) => e.idle(),
        }
    }

    /// Certifies architectural state is final (see the engines'
    /// `arch_drained` docs); trivially true with no engine attached.
    fn arch_drained(&self) -> bool {
        match self {
            Engine::None => true,
            Engine::VLittle(e) => e.arch_drained(),
            Engine::Simple(e) => e.arch_drained(),
        }
    }

    /// Which cluster clock drives the engine.
    fn on_little_clock(&self) -> bool {
        matches!(self, Engine::VLittle(_))
    }
}

/// How the workload executes on this system.
///
/// Chosen by the simulator from the system kind and the workload class
/// (see the crate docs); exposed in [`FinalState`] so consumers know
/// which entry point and which cores carried the architectural work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Scalar whole-program on the single core.
    Serial,
    /// Vectorized whole-program on the big core + engine.
    Vector,
    /// Work-stealing task phases across all cores.
    Tasks,
}

/// Final architectural state of a finished run, extracted after the
/// workload check passed and every component certified it was drained.
///
/// What each field means — and when it is defined — is specified by the
/// oracle contract in `DESIGN.md` (§4.9): per-core register state is only
/// meaningful for cores that actually executed an entry point, while the
/// memory image is placement-independent and always comparable.
#[derive(Clone, Debug, PartialEq)]
pub struct FinalState {
    /// The execution mode the run used.
    pub mode: ExecMode,
    /// True when the attached vector engine (if any) certified that no
    /// in-flight activity could still affect architectural state. Always
    /// true after a clean run — recorded so a violation is loud.
    pub engine_drained: bool,
    /// The big core's architectural state, if the system has one.
    pub big: Option<ArchSnapshot>,
    /// Each little *core*'s architectural state (empty when the littles
    /// ran as VLITTLE lanes, which hold no architectural state).
    pub littles: Vec<ArchSnapshot>,
    /// The shared memory image (live prefix up to the high-water mark).
    pub mem: MemImage,
}

#[derive(Clone, Copy, Debug)]
enum WorkerState {
    /// Must ask the runtime for work.
    NeedWork,
    /// Serving scheduling overhead until the given domain cycle, then
    /// starting the contained task (None = just backing off).
    Overhead(u64, Option<usize>),
    /// Executing a task.
    Running,
    /// No work left anywhere.
    Parked,
}

fn pick_mode(kind: SystemKind, w: &Workload) -> ExecMode {
    match (kind, w.class) {
        (SystemKind::B4L | SystemKind::BIv4L, _) => ExecMode::Tasks,
        (SystemKind::B4Vl, WorkloadClass::TaskParallel) => ExecMode::Tasks,
        (SystemKind::B4Vl, _) => ExecMode::Vector,
        (SystemKind::BIv | SystemKind::BDv, _) if w.vector_entry.is_some() => ExecMode::Vector,
        _ => ExecMode::Serial,
    }
}

/// Runs `workload` on `kind` and returns the measured result.
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<RunResult, String> {
    simulate_with_stats(kind, workload, params).map(|(r, _)| r)
}

/// Like [`simulate`], additionally returning tick-skip counters.
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate_with_stats(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<(RunResult, SkipStats), String> {
    run_system(kind, workload, params, false).map(|(r, s, _, _)| (r, s))
}

/// Like [`simulate`], with event tracing forced on: returns the run's
/// structured [`TraceLog`] (render with `to_chrome_json` for Perfetto /
/// `chrome://tracing`, or `to_text` for a byte-stable dump).
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate_traced(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<(RunResult, TraceLog), String> {
    let mut params = params.clone();
    params.trace = true;
    run_system(kind, workload, &params, false)
        .map(|(r, _, _, log)| (r, log.expect("tracing was requested")))
}

/// Like [`simulate_with_stats`], additionally extracting the run's final
/// architectural state ([`FinalState`]).
///
/// Extraction happens after the workload's own output check passed and
/// after every core and engine certified it was drained, so the snapshot
/// is the settled architectural result of the run — the quantity the
/// differential-test harness compares against the functional oracle.
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate_with_state(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<(RunResult, SkipStats, FinalState), String> {
    run_system(kind, workload, params, true)
        .map(|(r, s, f, _)| (r, s, f.expect("state extraction requested")))
}

/// Arms the thread-local trace sink around the actual run so the sink is
/// disarmed (and drained) on every exit path, including errors.
fn run_system(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
    want_state: bool,
) -> Result<(RunResult, SkipStats, Option<FinalState>, Option<TraceLog>), String> {
    if params.trace {
        trace::start(TRACE_CAPACITY);
    }
    let res = run_system_inner(kind, workload, params, want_state);
    let log = params.trace.then(trace::finish);
    res.map(|(r, s, f)| (r, s, f, log))
}

fn run_system_inner(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
    want_state: bool,
) -> Result<(RunResult, SkipStats, Option<FinalState>), String> {
    let mode = pick_mode(kind, workload);
    let shared = SharedMem::new(workload.mem.fork());
    let program = Arc::clone(&workload.program);

    // ---- memory hierarchy
    let mut hier_cfg = HierConfig::with_little(kind.num_little());
    hier_cfg.has_big = kind.has_big();
    hier_cfg.has_dve = kind == SystemKind::BDv;
    let mut hier = MemHierarchy::new(hier_cfg);
    let vector_mode_banks = kind == SystemKind::B4Vl && mode == ExecMode::Vector;
    hier.set_vector_mode(vector_mode_banks);

    // ---- vector engine
    let mut engine = match (kind, mode) {
        (SystemKind::BIv | SystemKind::BIv4L, _) => Engine::Simple(Box::new(
            SimpleVecMachine::new(ivu_params(), hier.line_bytes()),
        )),
        (SystemKind::BDv, _) => Engine::Simple(Box::new(SimpleVecMachine::new(
            dve_params(),
            hier.line_bytes(),
        ))),
        (SystemKind::B4Vl, ExecMode::Vector) => Engine::VLittle(Box::new(VLittleEngine::new(
            params.engine,
            hier.line_bytes(),
        ))),
        _ => Engine::None,
    };

    // ---- cores
    let mut big = kind.has_big().then(|| {
        BigCore::new(
            shared.clone(),
            Arc::clone(&program),
            TEXT_BASE,
            hier.line_bytes(),
            engine.vlen_bits(),
            BigParams::default(),
        )
    });
    // Little cores exist as *cores* except when they are VLITTLE lanes.
    let n_little_cores = if vector_mode_banks {
        0
    } else {
        kind.num_little()
    };
    let mut littles: Vec<LittleCore> = (0..n_little_cores)
        .map(|c| {
            LittleCore::new(
                c as u8,
                shared.clone(),
                Arc::clone(&program),
                TEXT_BASE,
                hier.line_bytes(),
                LittleParams::default(),
            )
        })
        .collect();

    // ---- execution-mode setup
    // Workers: index 0 = big (if present), then littles.
    let big_worker_exists = big.is_some() && mode == ExecMode::Tasks;
    let n_workers = usize::from(big_worker_exists)
        + if mode == ExecMode::Tasks {
            littles.len()
        } else {
            0
        };
    let mut runtime =
        (mode == ExecMode::Tasks).then(|| WorkStealing::new(n_workers, RuntimeParams::default()));
    let mut worker_state = vec![WorkerState::NeedWork; n_workers];
    let mut phase_idx = 0usize;

    match mode {
        ExecMode::Serial => {
            if let Some(b) = big.as_mut() {
                b.assign(workload.serial_entry);
            } else {
                littles[0].assign(workload.serial_entry);
            }
        }
        ExecMode::Vector => {
            let entry = workload
                .vector_entry
                .ok_or_else(|| format!("{} has no vectorized variant", workload.name))?;
            big.as_mut()
                .expect("vector mode needs a big core")
                .assign(entry);
        }
        ExecMode::Tasks => {
            let rt = runtime.as_mut().expect("task mode");
            rt.seed_tasks(workload.phases[0].tasks.clone());
        }
    }

    // ---- clock domains
    let pb = ClockConfig::period_fs(params.clocks.big_ghz);
    let pl = ClockConfig::period_fs(params.clocks.little_ghz);
    let pu = ClockConfig::period_fs(params.clocks.uncore_ghz);
    let (mut next_b, mut next_l, mut next_u) = (pb, pl, pu);
    let (mut cyc_b, mut cyc_l, mut cyc_u) = (0u64, 0u64, 0u64);
    let big_active = big.is_some();
    let little_active = !littles.is_empty() || engine.on_little_clock();

    let mut skip_stats = SkipStats::default();
    // Hoisted scratch for the skip planner (at most one entry per little).
    let mut little_accts: Vec<Option<StallKind>> = Vec::with_capacity(littles.len());
    let mut big_acct: Option<StallKind> = None;

    let (mut plan_cooldown, mut plan_streak) = (0u32, 0u32);
    let mut t_fs;
    loop {
        // Completion check.
        let cores_done =
            big.as_ref().is_none_or(BigCore::done) && littles.iter().all(LittleCore::done);
        let done = match mode {
            ExecMode::Serial | ExecMode::Vector => cores_done && engine.idle(),
            ExecMode::Tasks => {
                let rt = runtime.as_ref().expect("task mode");
                let workers_idle = worker_state
                    .iter()
                    .all(|s| matches!(s, WorkerState::Parked));
                if rt.drained() && workers_idle && cores_done && engine.idle() {
                    phase_idx += 1;
                    if phase_idx >= workload.phases.len() {
                        true
                    } else {
                        trace::emit(cyc_u, "sim", 0, "phase", phase_idx as u64);
                        let rt = runtime.as_mut().expect("task mode");
                        rt.seed_tasks(workload.phases[phase_idx].tasks.clone());
                        for s in worker_state.iter_mut() {
                            *s = WorkerState::NeedWork;
                        }
                        false
                    }
                } else {
                    false
                }
            }
        };
        if done {
            break;
        }
        if cyc_u >= params.max_uncore_cycles {
            return Err(format!(
                "{} on {} exceeded {} uncore cycles",
                workload.name,
                kind.label(),
                params.max_uncore_cycles
            ));
        }

        // ---- quiescence-aware tick skipping --------------------------
        // Every component certifies, via its `quiescence`/`next_event`
        // method, the earliest future cycle at which ticking it could do
        // more than repeat one constant stall accounting. When all
        // components across all live clock domains are quiescent *now*,
        // jump every domain straight to the earliest such event edge,
        // batch-applying exactly the accounting the skipped naive ticks
        // would have produced. Reported cycle counts and all statistics
        // are bit-identical to the naive loop (see the skip-equivalence
        // suite in `tests/`).
        // Planning costs a sweep over every component even when a busy
        // component vetoes it; during long active stretches that cost is
        // pure overhead. Back off exponentially after failed attempts
        // (results are unaffected — an unplanned edge is simply ticked
        // naively; only the entry into an idle window is delayed by at
        // most the cooldown).
        let attempt = !params.no_skip && plan_cooldown == 0;
        plan_cooldown = plan_cooldown.saturating_sub(1);
        let t_star: Option<u64> = 'plan: {
            if !attempt {
                break 'plan None;
            }
            big_acct = None;
            little_accts.clear();
            let fold = |t: Option<u64>, fs: u64| Some(t.map_or(fs, |x: u64| x.min(fs)));
            // fs time of the edge that processes cycle `e` of a domain.
            let edge_fs = |e: u64, cyc: u64, next: u64, period: u64| next + (e - cyc) * period;
            let mut t: Option<u64> = None;

            // Uncore: the hierarchy's own event horizon.
            match hier.next_event(cyc_u) {
                Some(e) if e <= cyc_u => break 'plan None,
                Some(e) => t = fold(t, edge_fs(e, cyc_u, next_u, pu)),
                None => {}
            }

            // Big domain: core, big-clocked engine, worker 0.
            if let Some(b) = big.as_ref() {
                if hier.response_pending(PortId::BigFetch) || hier.response_pending(PortId::BigData)
                {
                    break 'plan None;
                }
                let (eca, esp, emd) = match &engine {
                    Engine::None => (false, false, true),
                    Engine::VLittle(e) => (e.can_accept(), e.scalar_pending(), e.mem_drained()),
                    // A deliverable Simple-machine scalar forces that
                    // machine's quiescence to `Active` below.
                    Engine::Simple(m) => (m.can_accept(), false, m.mem_drained()),
                };
                match b.quiescence(cyc_b, eca, esp, emd) {
                    Quiescence::Active => break 'plan None,
                    Quiescence::Idle { until, account } => {
                        big_acct = account;
                        if let Some(u) = until {
                            t = fold(t, edge_fs(u, cyc_b, next_b, pb));
                        }
                    }
                }
                if let Engine::Simple(m) = &engine {
                    if hier.response_pending(m.port()) {
                        break 'plan None;
                    }
                    match m.quiescence(cyc_b) {
                        Quiescence::Active => break 'plan None,
                        Quiescence::Idle { until, .. } => {
                            if let Some(u) = until {
                                t = fold(t, edge_fs(u, cyc_b, next_b, pb));
                            }
                        }
                    }
                }
                if big_worker_exists {
                    match worker_event(worker_state[0], cyc_b, b.done()) {
                        Err(()) => break 'plan None,
                        Ok(Some(u)) => t = fold(t, edge_fs(u, cyc_b, next_b, pb)),
                        Ok(None) => {}
                    }
                }
            }

            // Little domain: cores, the VLITTLE engine, their workers.
            if let Engine::VLittle(e) = &engine {
                if hier.response_pending(PortId::Vmu(0)) {
                    break 'plan None;
                }
                match e.quiescence(cyc_l) {
                    Quiescence::Active => break 'plan None,
                    Quiescence::Idle { until, .. } => {
                        if let Some(u) = until {
                            t = fold(t, edge_fs(u, cyc_l, next_l, pl));
                        }
                    }
                }
            }
            for (i, lc) in littles.iter().enumerate() {
                if hier.response_pending(PortId::LittleFetch(i as u8))
                    || hier.response_pending(PortId::LittleData(i as u8))
                {
                    break 'plan None;
                }
                match lc.quiescence(cyc_l) {
                    Quiescence::Active => break 'plan None,
                    Quiescence::Idle { until, account } => {
                        little_accts.push(account);
                        if let Some(u) = until {
                            t = fold(t, edge_fs(u, cyc_l, next_l, pl));
                        }
                    }
                }
                if mode == ExecMode::Tasks {
                    let w = usize::from(big_worker_exists) + i;
                    match worker_event(worker_state[w], cyc_l, lc.done()) {
                        Err(()) => break 'plan None,
                        Ok(Some(u)) => t = fold(t, edge_fs(u, cyc_l, next_l, pl)),
                        Ok(None) => {}
                    }
                }
            }

            // No pending event at all means the system is wedged waiting
            // for something that will never come — fall back to naive
            // stepping so the cycle budget aborts exactly as it would
            // have.
            t
        };
        if attempt {
            if t_star.is_some() {
                plan_streak = 0;
            } else {
                plan_cooldown = 1u32 << plan_streak.min(PLAN_BACKOFF_LOG_CAP);
                plan_streak += 1;
            }
        }

        if let Some(t_star) = t_star {
            // Skip every edge strictly before the earliest event edge.
            let mut skipped = 0u64;
            if next_u < t_star {
                let n = (t_star - next_u).div_ceil(pu);
                cyc_u += n;
                next_u += n * pu;
                skipped += n;
                // Re-sync any lazily advanced hierarchy bookkeeping by
                // replaying the last skipped (no-op) tick.
                hier.tick(cyc_u - 1);
            }
            if big_active && next_b < t_star {
                let n = (t_star - next_b).div_ceil(pb);
                if let Some(b) = big.as_mut() {
                    b.skip_idle(n, big_acct);
                }
                if let Engine::Simple(m) = &mut engine {
                    m.skip_idle(n);
                }
                cyc_b += n;
                next_b += n * pb;
                skipped += n;
            }
            if little_active && next_l < t_star {
                let n = (t_star - next_l).div_ceil(pl);
                if let Engine::VLittle(e) = &mut engine {
                    e.skip_idle(cyc_l, n);
                }
                for (i, lc) in littles.iter_mut().enumerate() {
                    lc.skip_idle(n, little_accts[i]);
                }
                cyc_l += n;
                next_l += n * pl;
                skipped += n;
            }
            if skipped > 0 {
                skip_stats.edges_skipped += skipped;
                skip_stats.windows += 1;
                trace::emit(cyc_u, "sim", 0, "skip", skipped);
                continue;
            }
            // The next event sits on the very next edge: process it
            // naively below.
        }

        // Advance to the earliest pending clock edge.
        t_fs = next_u;
        if big_active {
            t_fs = t_fs.min(next_b);
        }
        if little_active {
            t_fs = t_fs.min(next_l);
        }

        if t_fs == next_u {
            hier.tick(cyc_u);
            cyc_u += 1;
            next_u += pu;
            skip_stats.edges_run += 1;
        }
        let little_edge = little_active && t_fs == next_l;
        let big_edge = big_active && t_fs == next_b;

        // Engines tick on their cluster's edge, before the cores that feed
        // them.
        if (engine.on_little_clock() && little_edge)
            || (!engine.on_little_clock() && big_edge && !matches!(engine, Engine::None))
        {
            let cyc = if engine.on_little_clock() {
                cyc_l
            } else {
                cyc_b
            };
            if let Some(e) = engine.as_dyn() {
                e.tick(cyc, &mut hier);
            }
        }

        if big_edge {
            if let Some(b) = big.as_mut() {
                b.tick(cyc_b, &mut hier, engine.as_dyn());
                if mode == ExecMode::Tasks && big_worker_exists {
                    let vector_capable = !matches!(engine, Engine::None);
                    service_worker(
                        0,
                        cyc_b,
                        &mut worker_state[0],
                        runtime.as_mut().expect("task mode"),
                        &mut WorkerCore::Big(b),
                        vector_capable,
                    );
                }
            }
            cyc_b += 1;
            next_b += pb;
            skip_stats.edges_run += 1;
        }

        if little_edge {
            for (i, lc) in littles.iter_mut().enumerate() {
                lc.tick(cyc_l, &mut hier);
                if mode == ExecMode::Tasks {
                    let w = usize::from(big_worker_exists) + i;
                    service_worker(
                        w,
                        cyc_l,
                        &mut worker_state[w],
                        runtime.as_mut().expect("task mode"),
                        &mut WorkerCore::Little(lc),
                        false,
                    );
                }
            }
            cyc_l += 1;
            next_l += pl;
            skip_stats.edges_run += 1;
        }
    }

    // ---- verification
    shared.with(|m| (workload.check)(m))?;

    // ---- final-state extraction (cores and memory are locals; snapshot
    // before they drop). The completion condition above already required
    // every core done and the engine idle, so the state is settled.
    let final_state = want_state.then(|| FinalState {
        mode,
        engine_drained: engine.arch_drained(),
        big: big.as_ref().map(BigCore::arch_snapshot),
        littles: littles.iter().map(LittleCore::arch_snapshot).collect(),
        mem: shared.with(MemImage::capture),
    });

    // ---- result assembly
    let wall_fs = [
        cyc_u.saturating_mul(pu),
        if big_active {
            cyc_b.saturating_mul(pb)
        } else {
            0
        },
        if little_active {
            cyc_l.saturating_mul(pl)
        } else {
            0
        },
    ]
    .into_iter()
    .max()
    .expect("non-empty");

    // Every clock edge was either processed naively or batch-skipped —
    // the skip-mode conservation law. (Checked here from loop locals:
    // `SkipStats` is deliberately not part of the snapshot, so skip-on
    // and skip-off results stay byte-identical.)
    debug_assert_eq!(
        skip_stats.edges_run + skip_stats.edges_skipped,
        cyc_u + if big_active { cyc_b } else { 0 } + if little_active { cyc_l } else { 0 },
        "skip conservation: edges_run + edges_skipped != Σ domain cycles"
    );

    let fetch_groups = big.as_ref().map_or(0, |b| b.fetch_groups())
        + littles.iter().map(|l| l.fetch_groups()).sum::<u64>();

    // ---- unified stats registry: every component's counters under one
    // hierarchical path schema (DESIGN.md §4.10). This snapshot is what
    // figure modules read and what the conservation checker audits.
    let mut reg = StatsRegistry::new();
    {
        let mut sys = reg.scope("sys");
        let mut clock = sys.scope("clock");
        clock.set("uncore", cyc_u);
        if big_active {
            clock.set("big", cyc_b);
        }
        if little_active {
            clock.set("little", cyc_l);
        }
        sys.set("fetch_groups", fetch_groups);
        if let Some(b) = big.as_ref() {
            b.stats().register(&mut sys.scope("big"));
        }
        for (i, lc) in littles.iter().enumerate() {
            lc.stats().register(&mut sys.scope(&format!("little{i}")));
        }
        match &engine {
            Engine::VLittle(e) => {
                for c in 0..e.num_lanes() {
                    e.lane_stats(c)
                        .register(&mut sys.scope(&format!("lane{c}")));
                }
                e.register_stats(&mut sys.scope("engine"));
            }
            Engine::Simple(m) => m.stats().register(&mut sys.scope("engine")),
            Engine::None => {}
        }
        if let Some(rt) = runtime.as_ref() {
            rt.stats().register(&mut sys.scope("runtime"));
        }
        hier.register_stats(&mut sys);
    }

    let mut result = RunResult {
        wall_ns: wall_fs as f64 / 1.0e6,
        uncore_cycles: cyc_u,
        big: big.as_ref().map(|b| *b.stats()),
        littles: littles.iter().map(|l| *l.stats()).collect(),
        lanes: Vec::new(),
        fetch_groups,
        mem: hier.stats(),
        runtime: runtime.as_ref().map(|r| *r.stats()),
        stats: reg.snapshot(),
    };
    if let Engine::VLittle(e) = &engine {
        result.lanes = (0..e.num_lanes()).map(|c| *e.lane_stats(c)).collect();
    }

    // Debug builds audit every run against the conservation laws; release
    // builds skip the sweep (it is pure verification, not measurement).
    #[cfg(debug_assertions)]
    {
        let violations = bvl_obs::check_conservation(&result.stats);
        assert!(
            violations.is_empty(),
            "conservation laws violated for {} on {}:\n{}",
            workload.name,
            kind.label(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    Ok((result, skip_stats, final_state))
}

/// The cycle a worker's scheduling state machine next acts, if any.
/// `Err(())` means it may act this very cycle (so no skipping).
fn worker_event(state: WorkerState, now: u64, core_done: bool) -> Result<Option<u64>, ()> {
    match state {
        WorkerState::Parked => Ok(None),
        // Both states transition the moment the core drains; while it is
        // busy the core's own quiescence bounds the window.
        WorkerState::Running | WorkerState::NeedWork => {
            if core_done {
                Err(())
            } else {
                Ok(None)
            }
        }
        WorkerState::Overhead(until, _) => {
            if until <= now {
                Err(())
            } else {
                Ok(Some(until))
            }
        }
    }
}

/// A worker's core, unified for task servicing.
enum WorkerCore<'a> {
    Big(&'a mut BigCore),
    Little(&'a mut LittleCore),
}

impl WorkerCore<'_> {
    fn done(&self) -> bool {
        match self {
            WorkerCore::Big(b) => b.done(),
            WorkerCore::Little(l) => l.done(),
        }
    }

    fn start(&mut self, entry: u32, args: &[(bvl_isa::reg::XReg, u64)]) {
        match self {
            WorkerCore::Big(b) => {
                for &(r, v) in args {
                    b.machine_mut().set_xreg(r, v);
                }
                b.assign(entry);
            }
            WorkerCore::Little(l) => {
                for &(r, v) in args {
                    l.machine_mut().set_xreg(r, v);
                }
                l.assign(entry);
            }
        }
    }
}

/// Drives one worker's scheduling state machine after its core ticked.
fn service_worker(
    worker: usize,
    now: u64,
    state: &mut WorkerState,
    runtime: &mut WorkStealing,
    core: &mut WorkerCore<'_>,
    vector_capable: bool,
) {
    match *state {
        WorkerState::Parked => {}
        WorkerState::Running => {
            if core.done() {
                *state = WorkerState::NeedWork;
            }
        }
        WorkerState::NeedWork => {
            if !core.done() {
                return; // pipeline still draining
            }
            match runtime.fetch(worker) {
                Fetched::Task { index, overhead } => {
                    *state = WorkerState::Overhead(now + overhead, Some(index));
                }
                Fetched::Empty { backoff } => {
                    *state = WorkerState::Overhead(now + backoff, None);
                }
                Fetched::Finished => {
                    trace::emit(now, "worker", worker as u16, "park", 0);
                    *state = WorkerState::Parked;
                }
            }
        }
        WorkerState::Overhead(until, task) => {
            if now < until {
                return;
            }
            match task {
                Some(index) => {
                    trace::emit(now, "worker", worker as u16, "task_start", index as u64);
                    let t = runtime.task(index).clone();
                    core.start(t.entry(vector_capable), &t.args);
                    *state = WorkerState::Running;
                }
                None => *state = WorkerState::NeedWork,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_workloads::kernels::{saxpy, vvadd};
    use bvl_workloads::Scale;

    fn run(kind: SystemKind, w: &Workload) -> RunResult {
        simulate(kind, w, &SimParams::default()).unwrap_or_else(|e| panic!("{kind}: {e}"))
    }

    #[test]
    fn vvadd_runs_on_every_system() {
        let w = vvadd::build(Scale::tiny());
        for kind in SystemKind::ALL {
            let r = run(kind, &w);
            assert!(r.wall_ns > 0.0, "{kind} reported zero time");
        }
    }

    #[test]
    fn figure4_orderings_hold_for_saxpy() {
        let w = saxpy::build(Scale::tiny());
        let t = |k| run(k, &w).wall_ns;
        let (l1, b1, biv, bdv, b4vl) = (
            t(SystemKind::L1),
            t(SystemKind::B1),
            t(SystemKind::BIv),
            t(SystemKind::BDv),
            t(SystemKind::B4Vl),
        );
        // Big beats little; vector units beat plain big; the DVE is the
        // fastest data-parallel machine.
        assert!(b1 < l1, "1b ({b1}) !< 1L ({l1})");
        assert!(biv < b1, "1bIV ({biv}) !< 1b ({b1})");
        assert!(bdv < biv, "1bDV ({bdv}) !< 1bIV ({biv})");
        // big.VLITTLE lands between the integrated unit and the DVE.
        assert!(b4vl < biv, "1b-4VL ({b4vl}) !< 1bIV ({biv})");
        assert!(bdv < b4vl, "1bDV ({bdv}) !< 1b-4VL ({b4vl})");
    }

    #[test]
    fn task_systems_complete_data_parallel_workloads() {
        let w = vvadd::build(Scale::tiny());
        for kind in [SystemKind::B4L, SystemKind::BIv4L] {
            let r = run(kind, &w);
            let rt = r.runtime.expect("task mode");
            assert!(rt.tasks_run > 0);
            assert!(!r.littles.is_empty());
        }
    }

    #[test]
    fn vlittle_reports_lane_breakdowns() {
        let w = saxpy::build(Scale::tiny());
        let r = run(SystemKind::B4Vl, &w);
        assert_eq!(r.lanes.len(), 4);
        assert!(r.lanes.iter().all(|l| l.cycles > 0));
        // In vector mode the little cores are lanes, not cores.
        assert!(r.littles.is_empty());
    }

    #[test]
    fn dvfs_changes_wall_time() {
        let w = vvadd::build(Scale::tiny());
        let mut slow = SimParams::default();
        slow.clocks.little_ghz = 0.5;
        let base = simulate(SystemKind::L1, &w, &SimParams::default()).expect("base");
        let half = simulate(SystemKind::L1, &w, &slow).expect("half");
        let ratio = half.wall_ns / base.wall_ns;
        // vvadd is memory-bound and the uncore keeps its 1 GHz clock, so
        // the slowdown is well under 2x — but it must be a slowdown.
        assert!(
            ratio > 1.08,
            "halving the little clock sped things up? ratio {ratio}"
        );
    }
}

#[cfg(test)]
mod switch_cost_tests {
    use super::*;
    use bvl_workloads::kernels::vvadd;
    use bvl_workloads::Scale;

    /// The paper charges ~500 cycles at each vector-region entry; zeroing
    /// the penalty must recover roughly that many little-cluster cycles.
    #[test]
    fn mode_switch_penalty_is_observable() {
        let w = vvadd::build(Scale::tiny());
        let with = simulate(SystemKind::B4Vl, &w, &SimParams::default()).expect("with penalty");
        let mut params = SimParams::default();
        params.engine.switch_penalty = 0;
        let without = simulate(SystemKind::B4Vl, &w, &params).expect("without penalty");
        let saved_ns = with.wall_ns - without.wall_ns;
        // One region entry at 1 GHz little clock = ~500 ns.
        assert!(
            (400.0..=700.0).contains(&saved_ns),
            "expected ~500 ns savings, got {saved_ns}"
        );
    }
}
