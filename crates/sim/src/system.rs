//! The composed system simulator.

use crate::config::{ClockConfig, SimParams, SystemKind};
use crate::result::RunResult;
use crate::snapshot::{params_fingerprint, workload_fingerprint, SysState};
use bvl_baseline::{dve_params, ivu_params, SimpleVecMachine};
use bvl_core::fetch::TEXT_BASE;
use bvl_core::types::{Quiescence, StallKind, VectorEngine};
use bvl_core::{BigCore, BigParams, LittleCore, LittleParams};
use bvl_isa::exec::ArchSnapshot;
use bvl_mem::{HierConfig, MemHierarchy, MemImage, PortId, SharedMem, SimMemory};
use bvl_obs::{trace, StatsRegistry, TraceLog};
use bvl_runtime::{Fetched, RuntimeParams, WorkStealing};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use bvl_vengine::VLittleEngine;
use bvl_workloads::{Workload, WorkloadClass};
use std::sync::Arc;

/// Ring-buffer capacity of a traced run: the first this-many events are
/// kept, later ones only counted (`TraceLog::dropped`) — a deterministic
/// truncation policy the golden-trace test relies on.
const TRACE_CAPACITY: usize = 1 << 16;

/// Tick-skip effectiveness counters for one run.
///
/// A side channel next to [`RunResult`] — deliberately **not** part of
/// it, so skip-on and skip-off runs stay byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SkipStats {
    /// Clock edges processed by the naive loop body.
    pub edges_run: u64,
    /// Clock edges batch-advanced by the quiescence engine.
    pub edges_skipped: u64,
    /// Number of batch advances (`edges_skipped / windows` is the mean
    /// window length — the amortization factor for planning cost).
    pub windows: u64,
}

snap_struct!(SkipStats {
    edges_run,
    edges_skipped,
    windows,
});

impl SkipStats {
    /// Fraction of all clock edges that were skipped.
    pub fn skipped_frac(&self) -> f64 {
        let total = self.edges_run + self.edges_skipped;
        if total == 0 {
            0.0
        } else {
            self.edges_skipped as f64 / total as f64
        }
    }

    /// The counters accumulated since `earlier` (a prior snapshot of the
    /// same run — e.g. the totals a restored checkpoint carried in).
    pub fn since(&self, earlier: &SkipStats) -> SkipStats {
        SkipStats {
            edges_run: self.edges_run - earlier.edges_run,
            edges_skipped: self.edges_skipped - earlier.edges_skipped,
            windows: self.windows - earlier.windows,
        }
    }
}

/// Failed-plan backoff ramp cap: after repeated vetoes the planner rests
/// for up to `2^this` edge steps between attempts (see the loop comment).
const PLAN_BACKOFF_LOG_CAP: u32 = 3;

/// The attached vector engine, kept concrete for stats access.
enum Engine {
    None,
    VLittle(Box<VLittleEngine>),
    Simple(Box<SimpleVecMachine>),
}

impl Engine {
    fn as_dyn(&mut self) -> Option<&mut dyn VectorEngine> {
        match self {
            Engine::None => None,
            Engine::VLittle(e) => Some(e.as_mut()),
            Engine::Simple(e) => Some(e.as_mut()),
        }
    }

    fn vlen_bits(&self) -> u32 {
        match self {
            Engine::None => 64,
            Engine::VLittle(e) => e.vlen_bits(),
            Engine::Simple(e) => e.vlen_bits(),
        }
    }

    fn idle(&self) -> bool {
        match self {
            Engine::None => true,
            Engine::VLittle(e) => e.idle(),
            Engine::Simple(e) => e.idle(),
        }
    }

    /// Certifies architectural state is final (see the engines'
    /// `arch_drained` docs); trivially true with no engine attached.
    fn arch_drained(&self) -> bool {
        match self {
            Engine::None => true,
            Engine::VLittle(e) => e.arch_drained(),
            Engine::Simple(e) => e.arch_drained(),
        }
    }

    /// Which cluster clock drives the engine.
    fn on_little_clock(&self) -> bool {
        matches!(self, Engine::VLittle(_))
    }

    /// Serializes the engine's mutable state. The variant is determined
    /// by system construction; the tag byte only guards against decoding
    /// a checkpoint into a differently shaped system.
    fn save_state(&self, w: &mut SnapWriter) {
        match self {
            Engine::None => w.u8(0),
            Engine::VLittle(e) => {
                w.u8(1);
                e.save_state(w);
            }
            Engine::Simple(m) => {
                w.u8(2);
                m.save_state(w);
            }
        }
    }

    /// Restores mutable state into the already-constructed engine.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, Engine::None) => Ok(()),
            (1, Engine::VLittle(e)) => e.restore_state(r),
            (2, Engine::Simple(m)) => m.restore_state(r),
            (t, _) => Err(SnapError::Corrupt {
                what: format!("engine variant tag {t} does not match the rebuilt system"),
            }),
        }
    }
}

/// How the workload executes on this system.
///
/// Chosen by the simulator from the system kind and the workload class
/// (see the crate docs); exposed in [`FinalState`] so consumers know
/// which entry point and which cores carried the architectural work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Scalar whole-program on the single core.
    Serial,
    /// Vectorized whole-program on the big core + engine.
    Vector,
    /// Work-stealing task phases across all cores.
    Tasks,
}

/// Final architectural state of a finished run, extracted after the
/// workload check passed and every component certified it was drained.
///
/// What each field means — and when it is defined — is specified by the
/// oracle contract in `DESIGN.md` (§4.9): per-core register state is only
/// meaningful for cores that actually executed an entry point, while the
/// memory image is placement-independent and always comparable.
#[derive(Clone, Debug, PartialEq)]
pub struct FinalState {
    /// The execution mode the run used.
    pub mode: ExecMode,
    /// True when the attached vector engine (if any) certified that no
    /// in-flight activity could still affect architectural state. Always
    /// true after a clean run — recorded so a violation is loud.
    pub engine_drained: bool,
    /// The big core's architectural state, if the system has one.
    pub big: Option<ArchSnapshot>,
    /// Each little *core*'s architectural state (empty when the littles
    /// ran as VLITTLE lanes, which hold no architectural state).
    pub littles: Vec<ArchSnapshot>,
    /// The shared memory image (live prefix up to the high-water mark).
    pub mem: MemImage,
}

#[derive(Clone, Copy, Debug)]
enum WorkerState {
    /// Must ask the runtime for work.
    NeedWork,
    /// Serving scheduling overhead until the given domain cycle, then
    /// starting the contained task (None = just backing off).
    Overhead(u64, Option<usize>),
    /// Executing a task.
    Running,
    /// No work left anywhere.
    Parked,
}

impl Snap for WorkerState {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            WorkerState::NeedWork => w.u8(0),
            WorkerState::Overhead(until, task) => {
                w.u8(1);
                until.save(w);
                task.save(w);
            }
            WorkerState::Running => w.u8(2),
            WorkerState::Parked => w.u8(3),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WorkerState::NeedWork,
            1 => WorkerState::Overhead(u64::load(r)?, Option::<usize>::load(r)?),
            2 => WorkerState::Running,
            3 => WorkerState::Parked,
            t => {
                return Err(SnapError::BadTag {
                    ty: "WorkerState",
                    tag: u64::from(t),
                })
            }
        })
    }
}

fn pick_mode(kind: SystemKind, w: &Workload) -> ExecMode {
    match (kind, w.class) {
        (SystemKind::B4L | SystemKind::BIv4L, _) => ExecMode::Tasks,
        (SystemKind::B4Vl, WorkloadClass::TaskParallel) => ExecMode::Tasks,
        (SystemKind::B4Vl, _) => ExecMode::Vector,
        (SystemKind::BIv | SystemKind::BDv, _) if w.vector_entry.is_some() => ExecMode::Vector,
        _ => ExecMode::Serial,
    }
}

/// The fully composed system plus the tick loop's own control state.
///
/// Factoring the run loop's locals into a struct is what makes whole-run
/// checkpointing possible: [`System::save_state`] serializes every field
/// that evolves during a run, and restoring into a freshly built `System`
/// (same kind/workload/params — immutable wiring is rebuilt, not saved)
/// resumes the loop exactly where the checkpoint was taken.
struct System<'w> {
    kind: SystemKind,
    workload: &'w Workload,
    params: SimParams,
    mode: ExecMode,
    shared: SharedMem,
    hier: MemHierarchy,
    engine: Engine,
    big: Option<BigCore>,
    littles: Vec<LittleCore>,
    big_worker_exists: bool,
    runtime: Option<WorkStealing>,
    worker_state: Vec<WorkerState>,
    phase_idx: usize,
    // Clock-domain periods (fs) — derived constants, not checkpointed.
    pb: u64,
    pl: u64,
    pu: u64,
    // Next edge time (fs) and elapsed cycles per domain.
    next_b: u64,
    next_l: u64,
    next_u: u64,
    cyc_b: u64,
    cyc_l: u64,
    cyc_u: u64,
    big_active: bool,
    little_active: bool,
    skip_stats: SkipStats,
    // Hoisted scratch for the skip planner (at most one entry per little);
    // valid only within one `step`, so never checkpointed.
    little_accts: Vec<Option<StallKind>>,
    big_acct: Option<StallKind>,
    plan_cooldown: u32,
    plan_streak: u32,
}

impl<'w> System<'w> {
    /// Builds the system `kind` with `workload` loaded and entry points
    /// assigned, ready for its first [`step`](Self::step).
    fn new(kind: SystemKind, workload: &'w Workload, params: &SimParams) -> Result<Self, String> {
        let mode = pick_mode(kind, workload);
        let shared = SharedMem::new(workload.mem.fork());
        let program = Arc::clone(&workload.program);

        // ---- memory hierarchy
        let mut hier_cfg = HierConfig::with_little(kind.num_little());
        hier_cfg.has_big = kind.has_big();
        hier_cfg.has_dve = kind == SystemKind::BDv;
        let mut hier = MemHierarchy::new(hier_cfg);
        let vector_mode_banks = kind == SystemKind::B4Vl && mode == ExecMode::Vector;
        hier.set_vector_mode(vector_mode_banks);

        // ---- vector engine
        let engine = match (kind, mode) {
            (SystemKind::BIv | SystemKind::BIv4L, _) => Engine::Simple(Box::new(
                SimpleVecMachine::new(ivu_params(), hier.line_bytes()),
            )),
            (SystemKind::BDv, _) => Engine::Simple(Box::new(SimpleVecMachine::new(
                dve_params(),
                hier.line_bytes(),
            ))),
            (SystemKind::B4Vl, ExecMode::Vector) => Engine::VLittle(Box::new(VLittleEngine::new(
                params.engine,
                hier.line_bytes(),
            ))),
            _ => Engine::None,
        };

        // ---- cores
        let mut big = kind.has_big().then(|| {
            BigCore::new(
                shared.clone(),
                Arc::clone(&program),
                TEXT_BASE,
                hier.line_bytes(),
                engine.vlen_bits(),
                BigParams::default(),
            )
        });
        // Little cores exist as *cores* except when they are VLITTLE lanes.
        let n_little_cores = if vector_mode_banks {
            0
        } else {
            kind.num_little()
        };
        let mut littles: Vec<LittleCore> = (0..n_little_cores)
            .map(|c| {
                LittleCore::new(
                    c as u8,
                    shared.clone(),
                    Arc::clone(&program),
                    TEXT_BASE,
                    hier.line_bytes(),
                    LittleParams::default(),
                )
            })
            .collect();

        // ---- execution-mode setup
        // Workers: index 0 = big (if present), then littles.
        let big_worker_exists = big.is_some() && mode == ExecMode::Tasks;
        let n_workers = usize::from(big_worker_exists)
            + if mode == ExecMode::Tasks {
                littles.len()
            } else {
                0
            };
        let mut runtime = (mode == ExecMode::Tasks)
            .then(|| WorkStealing::new(n_workers, RuntimeParams::default()));
        let worker_state = vec![WorkerState::NeedWork; n_workers];

        match mode {
            ExecMode::Serial => {
                if let Some(b) = big.as_mut() {
                    b.assign(workload.serial_entry);
                } else {
                    littles[0].assign(workload.serial_entry);
                }
            }
            ExecMode::Vector => {
                let entry = workload
                    .vector_entry
                    .ok_or_else(|| format!("{} has no vectorized variant", workload.name))?;
                big.as_mut()
                    .expect("vector mode needs a big core")
                    .assign(entry);
            }
            ExecMode::Tasks => {
                let rt = runtime.as_mut().expect("task mode");
                rt.seed_tasks(workload.phases[0].tasks.clone());
            }
        }

        // ---- clock domains
        let pb = ClockConfig::period_fs(params.clocks.big_ghz);
        let pl = ClockConfig::period_fs(params.clocks.little_ghz);
        let pu = ClockConfig::period_fs(params.clocks.uncore_ghz);
        let big_active = big.is_some();
        let little_active = !littles.is_empty() || engine.on_little_clock();
        let n_littles = littles.len();

        Ok(System {
            kind,
            workload,
            params: params.clone(),
            mode,
            shared,
            hier,
            engine,
            big,
            littles,
            big_worker_exists,
            runtime,
            worker_state,
            phase_idx: 0,
            pb,
            pl,
            pu,
            next_b: pb,
            next_l: pl,
            next_u: pu,
            cyc_b: 0,
            cyc_l: 0,
            cyc_u: 0,
            big_active,
            little_active,
            skip_stats: SkipStats::default(),
            little_accts: Vec::with_capacity(n_littles),
            big_acct: None,
            plan_cooldown: 0,
            plan_streak: 0,
        })
    }

    /// Runs one iteration of the tick loop: the completion check, then
    /// either a quiescence batch-skip or one naive multi-domain edge.
    /// Returns `Ok(true)` when the run has completed.
    ///
    /// # Errors
    ///
    /// Fails when the run exceeds the configured cycle budget.
    fn step(&mut self) -> Result<bool, String> {
        // Completion check.
        let cores_done = self.big.as_ref().is_none_or(BigCore::done)
            && self.littles.iter().all(LittleCore::done);
        let done = match self.mode {
            ExecMode::Serial | ExecMode::Vector => cores_done && self.engine.idle(),
            ExecMode::Tasks => {
                let rt = self.runtime.as_ref().expect("task mode");
                let workers_idle = self
                    .worker_state
                    .iter()
                    .all(|s| matches!(s, WorkerState::Parked));
                if rt.drained() && workers_idle && cores_done && self.engine.idle() {
                    self.phase_idx += 1;
                    if self.phase_idx >= self.workload.phases.len() {
                        true
                    } else {
                        trace::emit(self.cyc_u, "sim", 0, "phase", self.phase_idx as u64);
                        let rt = self.runtime.as_mut().expect("task mode");
                        rt.seed_tasks(self.workload.phases[self.phase_idx].tasks.clone());
                        for s in self.worker_state.iter_mut() {
                            *s = WorkerState::NeedWork;
                        }
                        false
                    }
                } else {
                    false
                }
            }
        };
        if done {
            return Ok(true);
        }
        if self.cyc_u >= self.params.max_uncore_cycles {
            return Err(format!(
                "{} on {} exceeded {} uncore cycles",
                self.workload.name,
                self.kind.label(),
                self.params.max_uncore_cycles
            ));
        }

        // ---- quiescence-aware tick skipping --------------------------
        // Every component certifies, via its `quiescence`/`next_event`
        // method, the earliest future cycle at which ticking it could do
        // more than repeat one constant stall accounting. When all
        // components across all live clock domains are quiescent *now*,
        // jump every domain straight to the earliest such event edge,
        // batch-applying exactly the accounting the skipped naive ticks
        // would have produced. Reported cycle counts and all statistics
        // are bit-identical to the naive loop (see the skip-equivalence
        // suite in `tests/`).
        // Planning costs a sweep over every component even when a busy
        // component vetoes it; during long active stretches that cost is
        // pure overhead. Back off exponentially after failed attempts
        // (results are unaffected — an unplanned edge is simply ticked
        // naively; only the entry into an idle window is delayed by at
        // most the cooldown).
        let attempt = !self.params.no_skip && self.plan_cooldown == 0;
        self.plan_cooldown = self.plan_cooldown.saturating_sub(1);
        let t_star: Option<u64> = 'plan: {
            if !attempt {
                break 'plan None;
            }
            self.big_acct = None;
            self.little_accts.clear();
            let fold = |t: Option<u64>, fs: u64| Some(t.map_or(fs, |x: u64| x.min(fs)));
            // fs time of the edge that processes cycle `e` of a domain.
            let edge_fs = |e: u64, cyc: u64, next: u64, period: u64| next + (e - cyc) * period;
            let mut t: Option<u64> = None;

            // Uncore: the hierarchy's own event horizon.
            match self.hier.next_event(self.cyc_u) {
                Some(e) if e <= self.cyc_u => break 'plan None,
                Some(e) => t = fold(t, edge_fs(e, self.cyc_u, self.next_u, self.pu)),
                None => {}
            }

            // Big domain: core, big-clocked engine, worker 0.
            if let Some(b) = self.big.as_ref() {
                if self.hier.response_pending(PortId::BigFetch)
                    || self.hier.response_pending(PortId::BigData)
                {
                    break 'plan None;
                }
                let (eca, esp, emd) = match &self.engine {
                    Engine::None => (false, false, true),
                    Engine::VLittle(e) => (e.can_accept(), e.scalar_pending(), e.mem_drained()),
                    // A deliverable Simple-machine scalar forces that
                    // machine's quiescence to `Active` below.
                    Engine::Simple(m) => (m.can_accept(), false, m.mem_drained()),
                };
                match b.quiescence(self.cyc_b, eca, esp, emd) {
                    Quiescence::Active => break 'plan None,
                    Quiescence::Idle { until, account } => {
                        self.big_acct = account;
                        if let Some(u) = until {
                            t = fold(t, edge_fs(u, self.cyc_b, self.next_b, self.pb));
                        }
                    }
                }
                if let Engine::Simple(m) = &self.engine {
                    if self.hier.response_pending(m.port()) {
                        break 'plan None;
                    }
                    match m.quiescence(self.cyc_b) {
                        Quiescence::Active => break 'plan None,
                        Quiescence::Idle { until, .. } => {
                            if let Some(u) = until {
                                t = fold(t, edge_fs(u, self.cyc_b, self.next_b, self.pb));
                            }
                        }
                    }
                }
                if self.big_worker_exists {
                    match worker_event(self.worker_state[0], self.cyc_b, b.done()) {
                        Err(()) => break 'plan None,
                        Ok(Some(u)) => t = fold(t, edge_fs(u, self.cyc_b, self.next_b, self.pb)),
                        Ok(None) => {}
                    }
                }
            }

            // Little domain: cores, the VLITTLE engine, their workers.
            if let Engine::VLittle(e) = &self.engine {
                if self.hier.response_pending(PortId::Vmu(0)) {
                    break 'plan None;
                }
                match e.quiescence(self.cyc_l) {
                    Quiescence::Active => break 'plan None,
                    Quiescence::Idle { until, .. } => {
                        if let Some(u) = until {
                            t = fold(t, edge_fs(u, self.cyc_l, self.next_l, self.pl));
                        }
                    }
                }
            }
            for (i, lc) in self.littles.iter().enumerate() {
                if self.hier.response_pending(PortId::LittleFetch(i as u8))
                    || self.hier.response_pending(PortId::LittleData(i as u8))
                {
                    break 'plan None;
                }
                match lc.quiescence(self.cyc_l) {
                    Quiescence::Active => break 'plan None,
                    Quiescence::Idle { until, account } => {
                        self.little_accts.push(account);
                        if let Some(u) = until {
                            t = fold(t, edge_fs(u, self.cyc_l, self.next_l, self.pl));
                        }
                    }
                }
                if self.mode == ExecMode::Tasks {
                    let w = usize::from(self.big_worker_exists) + i;
                    match worker_event(self.worker_state[w], self.cyc_l, lc.done()) {
                        Err(()) => break 'plan None,
                        Ok(Some(u)) => t = fold(t, edge_fs(u, self.cyc_l, self.next_l, self.pl)),
                        Ok(None) => {}
                    }
                }
            }

            // No pending event at all means the system is wedged waiting
            // for something that will never come — fall back to naive
            // stepping so the cycle budget aborts exactly as it would
            // have.
            t
        };
        if attempt {
            if t_star.is_some() {
                self.plan_streak = 0;
            } else {
                self.plan_cooldown = 1u32 << self.plan_streak.min(PLAN_BACKOFF_LOG_CAP);
                self.plan_streak += 1;
            }
        }

        if let Some(t_star) = t_star {
            // Skip every edge strictly before the earliest event edge.
            let mut skipped = 0u64;
            if self.next_u < t_star {
                let n = (t_star - self.next_u).div_ceil(self.pu);
                self.cyc_u += n;
                self.next_u += n * self.pu;
                skipped += n;
                // Re-sync any lazily advanced hierarchy bookkeeping by
                // replaying the last skipped (no-op) tick.
                self.hier.tick(self.cyc_u - 1);
            }
            if self.big_active && self.next_b < t_star {
                let n = (t_star - self.next_b).div_ceil(self.pb);
                if let Some(b) = self.big.as_mut() {
                    b.skip_idle(n, self.big_acct);
                }
                if let Engine::Simple(m) = &mut self.engine {
                    m.skip_idle(n);
                }
                self.cyc_b += n;
                self.next_b += n * self.pb;
                skipped += n;
            }
            if self.little_active && self.next_l < t_star {
                let n = (t_star - self.next_l).div_ceil(self.pl);
                if let Engine::VLittle(e) = &mut self.engine {
                    e.skip_idle(self.cyc_l, n);
                }
                for (i, lc) in self.littles.iter_mut().enumerate() {
                    lc.skip_idle(n, self.little_accts[i]);
                }
                self.cyc_l += n;
                self.next_l += n * self.pl;
                skipped += n;
            }
            if skipped > 0 {
                self.skip_stats.edges_skipped += skipped;
                self.skip_stats.windows += 1;
                trace::emit(self.cyc_u, "sim", 0, "skip", skipped);
                return Ok(false);
            }
            // The next event sits on the very next edge: process it
            // naively below.
        }

        // Advance to the earliest pending clock edge.
        let mut t_fs = self.next_u;
        if self.big_active {
            t_fs = t_fs.min(self.next_b);
        }
        if self.little_active {
            t_fs = t_fs.min(self.next_l);
        }

        if t_fs == self.next_u {
            self.hier.tick(self.cyc_u);
            self.cyc_u += 1;
            self.next_u += self.pu;
            self.skip_stats.edges_run += 1;
        }
        let little_edge = self.little_active && t_fs == self.next_l;
        let big_edge = self.big_active && t_fs == self.next_b;

        // Engines tick on their cluster's edge, before the cores that feed
        // them.
        if (self.engine.on_little_clock() && little_edge)
            || (!self.engine.on_little_clock() && big_edge && !matches!(self.engine, Engine::None))
        {
            let cyc = if self.engine.on_little_clock() {
                self.cyc_l
            } else {
                self.cyc_b
            };
            if let Some(e) = self.engine.as_dyn() {
                e.tick(cyc, &mut self.hier);
            }
        }

        if big_edge {
            if let Some(b) = self.big.as_mut() {
                b.tick(self.cyc_b, &mut self.hier, self.engine.as_dyn());
                if self.mode == ExecMode::Tasks && self.big_worker_exists {
                    let vector_capable = !matches!(self.engine, Engine::None);
                    service_worker(
                        0,
                        self.cyc_b,
                        &mut self.worker_state[0],
                        self.runtime.as_mut().expect("task mode"),
                        &mut WorkerCore::Big(b),
                        vector_capable,
                    );
                }
            }
            self.cyc_b += 1;
            self.next_b += self.pb;
            self.skip_stats.edges_run += 1;
        }

        if little_edge {
            for (i, lc) in self.littles.iter_mut().enumerate() {
                lc.tick(self.cyc_l, &mut self.hier);
                if self.mode == ExecMode::Tasks {
                    let w = usize::from(self.big_worker_exists) + i;
                    service_worker(
                        w,
                        self.cyc_l,
                        &mut self.worker_state[w],
                        self.runtime.as_mut().expect("task mode"),
                        &mut WorkerCore::Little(lc),
                        false,
                    );
                }
            }
            self.cyc_l += 1;
            self.next_l += self.pl;
            self.skip_stats.edges_run += 1;
        }

        Ok(false)
    }

    /// Verifies the workload's reference output and assembles the run's
    /// results — call only after [`step`](Self::step) returned `Ok(true)`.
    ///
    /// # Errors
    ///
    /// Fails if the final memory image does not match the workload's
    /// reference.
    fn finish(
        &self,
        want_state: bool,
    ) -> Result<(RunResult, SkipStats, Option<FinalState>), String> {
        // ---- verification
        self.shared.with(|m| (self.workload.check)(m))?;

        // ---- final-state extraction. The completion condition already
        // required every core done and the engine idle, so the state is
        // settled.
        let final_state = want_state.then(|| FinalState {
            mode: self.mode,
            engine_drained: self.engine.arch_drained(),
            big: self.big.as_ref().map(BigCore::arch_snapshot),
            littles: self.littles.iter().map(LittleCore::arch_snapshot).collect(),
            mem: self.shared.with(MemImage::capture),
        });

        // ---- result assembly
        let wall_fs = [
            self.cyc_u.saturating_mul(self.pu),
            if self.big_active {
                self.cyc_b.saturating_mul(self.pb)
            } else {
                0
            },
            if self.little_active {
                self.cyc_l.saturating_mul(self.pl)
            } else {
                0
            },
        ]
        .into_iter()
        .max()
        .expect("non-empty");

        // Every clock edge was either processed naively or batch-skipped —
        // the skip-mode conservation law. (`SkipStats` is deliberately not
        // part of the result, so skip-on and skip-off results stay
        // byte-identical. A restored run satisfies the law because the
        // checkpoint carries the counters alongside the cycle state.)
        debug_assert_eq!(
            self.skip_stats.edges_run + self.skip_stats.edges_skipped,
            self.cyc_u
                + if self.big_active { self.cyc_b } else { 0 }
                + if self.little_active { self.cyc_l } else { 0 },
            "skip conservation: edges_run + edges_skipped != Σ domain cycles"
        );

        let fetch_groups = self.big.as_ref().map_or(0, |b| b.fetch_groups())
            + self.littles.iter().map(|l| l.fetch_groups()).sum::<u64>();

        // ---- unified stats registry: every component's counters under one
        // hierarchical path schema (DESIGN.md §4.10). This snapshot is what
        // figure modules read and what the conservation checker audits.
        let mut reg = StatsRegistry::new();
        {
            let mut sys = reg.scope("sys");
            let mut clock = sys.scope("clock");
            clock.set("uncore", self.cyc_u);
            if self.big_active {
                clock.set("big", self.cyc_b);
            }
            if self.little_active {
                clock.set("little", self.cyc_l);
            }
            sys.set("fetch_groups", fetch_groups);
            if let Some(b) = self.big.as_ref() {
                b.stats().register(&mut sys.scope("big"));
            }
            for (i, lc) in self.littles.iter().enumerate() {
                lc.stats().register(&mut sys.scope(&format!("little{i}")));
            }
            match &self.engine {
                Engine::VLittle(e) => {
                    for c in 0..e.num_lanes() {
                        e.lane_stats(c)
                            .register(&mut sys.scope(&format!("lane{c}")));
                    }
                    e.register_stats(&mut sys.scope("engine"));
                }
                Engine::Simple(m) => m.stats().register(&mut sys.scope("engine")),
                Engine::None => {}
            }
            if let Some(rt) = self.runtime.as_ref() {
                rt.stats().register(&mut sys.scope("runtime"));
            }
            self.hier.register_stats(&mut sys);
        }

        let mut result = RunResult {
            wall_ns: wall_fs as f64 / 1.0e6,
            uncore_cycles: self.cyc_u,
            big: self.big.as_ref().map(|b| *b.stats()),
            littles: self.littles.iter().map(|l| *l.stats()).collect(),
            lanes: Vec::new(),
            fetch_groups,
            mem: self.hier.stats(),
            runtime: self.runtime.as_ref().map(|r| *r.stats()),
            stats: reg.snapshot(),
        };
        if let Engine::VLittle(e) = &self.engine {
            result.lanes = (0..e.num_lanes()).map(|c| *e.lane_stats(c)).collect();
        }

        // Debug builds audit every run against the conservation laws;
        // release builds skip the sweep (it is pure verification, not
        // measurement).
        #[cfg(debug_assertions)]
        {
            let violations = bvl_obs::check_conservation(&result.stats);
            assert!(
                violations.is_empty(),
                "conservation laws violated for {} on {}:\n{}",
                self.workload.name,
                self.kind.label(),
                violations
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }

        Ok((result, self.skip_stats, final_state))
    }

    /// Serializes every field that evolves during a run, in a fixed order
    /// (shared memory, hierarchy, engine, cores, runtime, loop control).
    /// Derived constants (periods, activity flags, worker topology) are
    /// rebuilt by [`System::new`] and deliberately not written.
    fn save_state(&self, w: &mut SnapWriter) {
        self.shared.with(|m| m.save(w));
        self.hier.save_state(w);
        self.engine.save_state(w);
        if let Some(b) = self.big.as_ref() {
            b.save_state(w);
        }
        for lc in &self.littles {
            lc.save_state(w);
        }
        if let Some(rt) = self.runtime.as_ref() {
            rt.save_state(w);
        }
        self.worker_state.save(w);
        self.phase_idx.save(w);
        self.cyc_b.save(w);
        self.cyc_l.save(w);
        self.cyc_u.save(w);
        self.next_b.save(w);
        self.next_l.save(w);
        self.next_u.save(w);
        self.skip_stats.save(w);
        self.plan_cooldown.save(w);
        self.plan_streak.save(w);
    }

    /// Restores a [`save_state`](Self::save_state) payload into this
    /// freshly built system, overwriting mutable state in place.
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mem = SimMemory::load(r)?;
        self.shared.with_mut(|m| *m = mem);
        self.hier.restore_state(r)?;
        self.engine.restore_state(r)?;
        if let Some(b) = self.big.as_mut() {
            b.restore_state(r)?;
        }
        for lc in &mut self.littles {
            lc.restore_state(r)?;
        }
        if let Some(rt) = self.runtime.as_mut() {
            rt.restore_state(r)?;
        }
        let worker_state = Vec::<WorkerState>::load(r)?;
        if worker_state.len() != self.worker_state.len() {
            return Err(SnapError::Corrupt {
                what: format!(
                    "checkpoint has {} worker states, system has {}",
                    worker_state.len(),
                    self.worker_state.len()
                ),
            });
        }
        self.worker_state = worker_state;
        self.phase_idx = usize::load(r)?;
        self.cyc_b = u64::load(r)?;
        self.cyc_l = u64::load(r)?;
        self.cyc_u = u64::load(r)?;
        self.next_b = u64::load(r)?;
        self.next_l = u64::load(r)?;
        self.next_u = u64::load(r)?;
        self.skip_stats = SkipStats::load(r)?;
        self.plan_cooldown = u32::load(r)?;
        self.plan_streak = u32::load(r)?;
        Ok(())
    }

    /// Captures the whole-system checkpoint at the current loop boundary.
    fn snapshot(&self) -> SysState {
        let mut w = SnapWriter::new();
        self.save_state(&mut w);
        SysState::new(
            self.kind,
            params_fingerprint(&self.params),
            workload_fingerprint(self.workload),
            self.cyc_u,
            w.into_bytes(),
        )
    }

    /// Restores `state` into this freshly built system after checking it
    /// was taken on the same kind/params/workload.
    fn restore_from(&mut self, state: &SysState) -> Result<(), String> {
        if state.kind() != self.kind {
            return Err(format!(
                "checkpoint was taken on {}, not {}",
                state.kind().label(),
                self.kind.label()
            ));
        }
        if state.params_fp() != params_fingerprint(&self.params) {
            return Err("checkpoint was taken under different simulation parameters".into());
        }
        if state.workload_fp() != workload_fingerprint(self.workload) {
            return Err(format!(
                "checkpoint was taken on a different workload than {}",
                self.workload.name
            ));
        }
        let mut r = SnapReader::new(state.body());
        self.restore_state(&mut r)
            .and_then(|()| r.finish())
            .map_err(|e| format!("checkpoint restore failed: {e}"))
    }
}

/// Runs `workload` on `kind` and returns the measured result.
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<RunResult, String> {
    simulate_with_stats(kind, workload, params).map(|(r, _)| r)
}

/// Like [`simulate`], additionally returning tick-skip counters.
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate_with_stats(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<(RunResult, SkipStats), String> {
    run_system(kind, workload, params, false, None, None).map(|(r, s, _, _, _)| (r, s))
}

/// Like [`simulate`], with event tracing forced on: returns the run's
/// structured [`TraceLog`] (render with `to_chrome_json` for Perfetto /
/// `chrome://tracing`, or `to_text` for a byte-stable dump).
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate_traced(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<(RunResult, TraceLog), String> {
    let mut params = params.clone();
    params.trace = true;
    run_system(kind, workload, &params, false, None, None)
        .map(|(r, _, _, _, log)| (r, log.expect("tracing was requested")))
}

/// Like [`simulate_with_stats`], additionally extracting the run's final
/// architectural state ([`FinalState`]).
///
/// Extraction happens after the workload's own output check passed and
/// after every core and engine certified it was drained, so the snapshot
/// is the settled architectural result of the run — the quantity the
/// differential-test harness compares against the functional oracle.
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget or the final
/// memory image does not match the workload's reference.
pub fn simulate_with_state(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
) -> Result<(RunResult, SkipStats, FinalState), String> {
    run_system(kind, workload, params, true, None, None)
        .map(|(r, s, f, _, _)| (r, s, f.expect("state extraction requested")))
}

/// Like [`simulate_with_state`], with deterministic checkpoint/restore.
///
/// When `resume` is given, the run starts from that checkpoint instead of
/// cycle 0 (the checkpoint must have been taken on the same system kind,
/// simulation parameters, and workload — fingerprint-checked). When
/// `params.checkpoint_every` is nonzero, `on_checkpoint` is invoked with a
/// fresh [`SysState`] each time the uncore clock crosses a multiple of
/// that cadence, always at a loop boundary. The contract (`DESIGN.md`
/// §4.11, enforced by the `restore_equivalence` suite) is that resuming
/// any such checkpoint reproduces the straight-through run's result,
/// final state, and stats snapshot byte-identically.
///
/// # Errors
///
/// Fails if the run exceeds the configured cycle budget, the final memory
/// image does not match the workload's reference, or `resume` holds a
/// checkpoint that does not match this system/params/workload or fails to
/// decode.
pub fn simulate_resumable(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
    resume: Option<&SysState>,
    on_checkpoint: &mut dyn FnMut(&SysState),
) -> Result<(RunResult, SkipStats, FinalState), String> {
    run_system(kind, workload, params, true, resume, Some(on_checkpoint))
        .map(|(r, s, f, _, _)| (r, s, f.expect("state extraction requested")))
}

/// Like [`simulate_resumable`], but without final-state extraction — the
/// sweep harness's entry point, where only the [`RunResult`] matters and
/// capturing the memory image on every point would be pure overhead.
///
/// # Errors
///
/// Same failure modes as [`simulate_resumable`].
pub fn simulate_with_stats_resumable(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
    resume: Option<&SysState>,
    on_checkpoint: &mut dyn FnMut(&SysState),
) -> Result<(RunResult, SkipStats), String> {
    run_system(kind, workload, params, false, resume, Some(on_checkpoint))
        .map(|(r, s, _, base, _)| (r, s.since(&base)))
}

/// Everything one run produces: result, cumulative skip counters, the
/// final state when requested, the skip baseline the run started from
/// (non-zero only on resume), and the trace log when tracing was armed.
type RunOutput = (
    RunResult,
    SkipStats,
    Option<FinalState>,
    SkipStats,
    Option<TraceLog>,
);

/// Arms the thread-local trace sink around the actual run so the sink is
/// disarmed (and drained) on every exit path, including errors.
fn run_system(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
    want_state: bool,
    resume: Option<&SysState>,
    on_checkpoint: Option<&mut dyn FnMut(&SysState)>,
) -> Result<RunOutput, String> {
    if params.trace {
        trace::start(TRACE_CAPACITY);
    }
    let res = run_system_inner(kind, workload, params, want_state, resume, on_checkpoint);
    let log = params.trace.then(trace::finish);
    res.map(|(r, s, f, base)| (r, s, f, base, log))
}

fn run_system_inner(
    kind: SystemKind,
    workload: &Workload,
    params: &SimParams,
    want_state: bool,
    resume: Option<&SysState>,
    mut on_checkpoint: Option<&mut dyn FnMut(&SysState)>,
) -> Result<(RunResult, SkipStats, Option<FinalState>, SkipStats), String> {
    let mut sys = System::new(kind, workload, params)?;
    if let Some(state) = resume {
        sys.restore_from(state)?;
    }
    // A restored checkpoint carries the interrupted run's cumulative skip
    // counters in (so final totals match the straight-through run); this
    // baseline lets `simulate_with_stats_resumable` also report what this
    // call actually processed.
    let skip_baseline = sys.skip_stats;
    // Checkpoints fire at loop boundaries when the uncore clock crosses a
    // multiple of the cadence. The next threshold is derived from the
    // current cycle, so a resumed run re-synchronizes onto the same grid
    // the straight-through run uses.
    let every = params.checkpoint_every;
    let grid_after = |cyc: u64| cyc.checked_div(every).map_or(u64::MAX, |q| (q + 1) * every);
    let mut next_ckpt = grid_after(sys.cyc_u);
    loop {
        if sys.cyc_u >= next_ckpt {
            if let Some(cb) = on_checkpoint.as_mut() {
                cb(&sys.snapshot());
            }
            next_ckpt = grid_after(sys.cyc_u);
        }
        if sys.step()? {
            break;
        }
    }
    sys.finish(want_state)
        .map(|(r, s, f)| (r, s, f, skip_baseline))
}

/// The cycle a worker's scheduling state machine next acts, if any.
/// `Err(())` means it may act this very cycle (so no skipping).
fn worker_event(state: WorkerState, now: u64, core_done: bool) -> Result<Option<u64>, ()> {
    match state {
        WorkerState::Parked => Ok(None),
        // Both states transition the moment the core drains; while it is
        // busy the core's own quiescence bounds the window.
        WorkerState::Running | WorkerState::NeedWork => {
            if core_done {
                Err(())
            } else {
                Ok(None)
            }
        }
        WorkerState::Overhead(until, _) => {
            if until <= now {
                Err(())
            } else {
                Ok(Some(until))
            }
        }
    }
}

/// A worker's core, unified for task servicing.
enum WorkerCore<'a> {
    Big(&'a mut BigCore),
    Little(&'a mut LittleCore),
}

impl WorkerCore<'_> {
    fn done(&self) -> bool {
        match self {
            WorkerCore::Big(b) => b.done(),
            WorkerCore::Little(l) => l.done(),
        }
    }

    fn start(&mut self, entry: u32, args: &[(bvl_isa::reg::XReg, u64)]) {
        match self {
            WorkerCore::Big(b) => {
                for &(r, v) in args {
                    b.machine_mut().set_xreg(r, v);
                }
                b.assign(entry);
            }
            WorkerCore::Little(l) => {
                for &(r, v) in args {
                    l.machine_mut().set_xreg(r, v);
                }
                l.assign(entry);
            }
        }
    }
}

/// Drives one worker's scheduling state machine after its core ticked.
fn service_worker(
    worker: usize,
    now: u64,
    state: &mut WorkerState,
    runtime: &mut WorkStealing,
    core: &mut WorkerCore<'_>,
    vector_capable: bool,
) {
    match *state {
        WorkerState::Parked => {}
        WorkerState::Running => {
            if core.done() {
                *state = WorkerState::NeedWork;
            }
        }
        WorkerState::NeedWork => {
            if !core.done() {
                return; // pipeline still draining
            }
            match runtime.fetch(worker) {
                Fetched::Task { index, overhead } => {
                    *state = WorkerState::Overhead(now + overhead, Some(index));
                }
                Fetched::Empty { backoff } => {
                    *state = WorkerState::Overhead(now + backoff, None);
                }
                Fetched::Finished => {
                    trace::emit(now, "worker", worker as u16, "park", 0);
                    *state = WorkerState::Parked;
                }
            }
        }
        WorkerState::Overhead(until, task) => {
            if now < until {
                return;
            }
            match task {
                Some(index) => {
                    trace::emit(now, "worker", worker as u16, "task_start", index as u64);
                    let t = runtime.task(index).clone();
                    core.start(t.entry(vector_capable), &t.args);
                    *state = WorkerState::Running;
                }
                None => *state = WorkerState::NeedWork,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_workloads::kernels::{saxpy, vvadd};
    use bvl_workloads::Scale;

    fn run(kind: SystemKind, w: &Workload) -> RunResult {
        simulate(kind, w, &SimParams::default()).unwrap_or_else(|e| panic!("{kind}: {e}"))
    }

    #[test]
    fn vvadd_runs_on_every_system() {
        let w = vvadd::build(Scale::tiny());
        for kind in SystemKind::ALL {
            let r = run(kind, &w);
            assert!(r.wall_ns > 0.0, "{kind} reported zero time");
        }
    }

    #[test]
    fn figure4_orderings_hold_for_saxpy() {
        let w = saxpy::build(Scale::tiny());
        let t = |k| run(k, &w).wall_ns;
        let (l1, b1, biv, bdv, b4vl) = (
            t(SystemKind::L1),
            t(SystemKind::B1),
            t(SystemKind::BIv),
            t(SystemKind::BDv),
            t(SystemKind::B4Vl),
        );
        // Big beats little; vector units beat plain big; the DVE is the
        // fastest data-parallel machine.
        assert!(b1 < l1, "1b ({b1}) !< 1L ({l1})");
        assert!(biv < b1, "1bIV ({biv}) !< 1b ({b1})");
        assert!(bdv < biv, "1bDV ({bdv}) !< 1bIV ({biv})");
        // big.VLITTLE lands between the integrated unit and the DVE.
        assert!(b4vl < biv, "1b-4VL ({b4vl}) !< 1bIV ({biv})");
        assert!(bdv < b4vl, "1bDV ({bdv}) !< 1b-4VL ({b4vl})");
    }

    #[test]
    fn task_systems_complete_data_parallel_workloads() {
        let w = vvadd::build(Scale::tiny());
        for kind in [SystemKind::B4L, SystemKind::BIv4L] {
            let r = run(kind, &w);
            let rt = r.runtime.expect("task mode");
            assert!(rt.tasks_run > 0);
            assert!(!r.littles.is_empty());
        }
    }

    #[test]
    fn vlittle_reports_lane_breakdowns() {
        let w = saxpy::build(Scale::tiny());
        let r = run(SystemKind::B4Vl, &w);
        assert_eq!(r.lanes.len(), 4);
        assert!(r.lanes.iter().all(|l| l.cycles > 0));
        // In vector mode the little cores are lanes, not cores.
        assert!(r.littles.is_empty());
    }

    #[test]
    fn dvfs_changes_wall_time() {
        let w = vvadd::build(Scale::tiny());
        let mut slow = SimParams::default();
        slow.clocks.little_ghz = 0.5;
        let base = simulate(SystemKind::L1, &w, &SimParams::default()).expect("base");
        let half = simulate(SystemKind::L1, &w, &slow).expect("half");
        let ratio = half.wall_ns / base.wall_ns;
        // vvadd is memory-bound and the uncore keeps its 1 GHz clock, so
        // the slowdown is well under 2x — but it must be a slowdown.
        assert!(
            ratio > 1.08,
            "halving the little clock sped things up? ratio {ratio}"
        );
    }

    #[test]
    fn checkpointing_does_not_change_results() {
        let w = vvadd::build(Scale::tiny());
        let base =
            simulate_with_state(SystemKind::B4Vl, &w, &SimParams::default()).expect("base run");
        let params = SimParams {
            checkpoint_every: 500,
            ..SimParams::default()
        };
        let mut taken = 0usize;
        let ckpt = simulate_resumable(SystemKind::B4Vl, &w, &params, None, &mut |_| taken += 1)
            .expect("checkpointed run");
        assert!(taken > 0, "expected at least one checkpoint");
        assert_eq!(base, ckpt);
    }

    #[test]
    fn restore_rejects_mismatched_checkpoints() {
        let w = vvadd::build(Scale::tiny());
        let params = SimParams {
            checkpoint_every: 500,
            ..SimParams::default()
        };
        let mut first = None;
        simulate_resumable(SystemKind::B4Vl, &w, &params, None, &mut |s| {
            first.get_or_insert_with(|| s.clone());
        })
        .expect("checkpointed run");
        let state = first.expect("one checkpoint");

        // Wrong system kind.
        let err = simulate_resumable(SystemKind::BDv, &w, &params, Some(&state), &mut |_| {})
            .expect_err("kind mismatch");
        assert!(err.contains("taken on"), "unexpected error: {err}");

        // Behaviorally different parameters.
        let mut other = params.clone();
        other.no_skip = true;
        let err = simulate_resumable(SystemKind::B4Vl, &w, &other, Some(&state), &mut |_| {})
            .expect_err("params mismatch");
        assert!(err.contains("parameters"), "unexpected error: {err}");

        // Different workload.
        let saxpy = saxpy::build(Scale::tiny());
        let err = simulate_resumable(SystemKind::B4Vl, &saxpy, &params, Some(&state), &mut |_| {})
            .expect_err("workload mismatch");
        assert!(err.contains("workload"), "unexpected error: {err}");
    }
}

#[cfg(test)]
mod switch_cost_tests {
    use super::*;
    use bvl_workloads::kernels::vvadd;
    use bvl_workloads::Scale;

    /// The paper charges ~500 cycles at each vector-region entry; zeroing
    /// the penalty must recover roughly that many little-cluster cycles.
    #[test]
    fn mode_switch_penalty_is_observable() {
        let w = vvadd::build(Scale::tiny());
        let with = simulate(SystemKind::B4Vl, &w, &SimParams::default()).expect("with penalty");
        let mut params = SimParams::default();
        params.engine.switch_penalty = 0;
        let without = simulate(SystemKind::B4Vl, &w, &params).expect("without penalty");
        let saved_ns = with.wall_ns - without.wall_ns;
        // One region entry at 1 GHz little clock = ~500 ns.
        assert!(
            (400.0..=700.0).contains(&saved_ns),
            "expected ~500 ns savings, got {saved_ns}"
        );
    }
}
