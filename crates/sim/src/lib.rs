#![warn(missing_docs)]
//! # bvl-sim — system compositions and the top-level simulation loop
//!
//! Builds the seven systems of the paper's Table III and runs workloads on
//! them:
//!
//! | key | composition |
//! |---|---|
//! | `1L` | one little core |
//! | `1b` | one big core |
//! | `1bIV` | big core + integrated 128-bit vector unit |
//! | `1b-4L` | big + four little cores (no vector support) |
//! | `1bIV-4L` | big with integrated vector unit + four little cores |
//! | `1bDV` | big + decoupled 2048-bit vector engine |
//! | `1b-4VL` | **big.VLITTLE**: big + four little cores reconfigurable as a 512-bit VLITTLE engine |
//!
//! Execution modes follow the paper's methodology: data-parallel workloads
//! run their vectorized whole-program entry on vector-capable single-core
//! systems, and as work-stealing tasks on the multi-core systems
//! (`1bIV-4L` runs the vectorized task variant when a task lands on the
//! big core); task-parallel workloads run as tasks wherever there are
//! multiple cores and serially elsewhere (`1bDV` can only use its big
//! core — the 1.7× deficit of Figure 4).
//!
//! Big and little clusters tick in independent clock domains (Section
//! VII's voltage/frequency exploration); the uncore stays at 1 GHz.

pub mod config;
pub mod result;
pub mod snapshot;
pub mod system;

pub use config::{ClockConfig, SimParams, SystemKind};
pub use result::RunResult;
pub use snapshot::SysState;
pub use system::{
    simulate, simulate_resumable, simulate_traced, simulate_with_state, simulate_with_stats,
    simulate_with_stats_resumable, ExecMode, FinalState, SkipStats,
};

/// Checks every conservation law against a finished run's counter
/// snapshot (see `bvl_obs::conservation` for the laws). Debug builds run
/// this automatically at the end of every simulation; release callers
/// (tests, experiment binaries) can invoke it explicitly.
pub fn verify_conservation(result: &RunResult) -> Vec<bvl_obs::Violation> {
    bvl_obs::check_conservation(&result.stats)
}
