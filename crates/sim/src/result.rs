//! Simulation results.

use bvl_core::types::CoreStats;
use bvl_mem::MemStats;
use bvl_runtime::RuntimeStats;

/// Everything one run reports.
///
/// `PartialEq` compares every field (including exact `wall_ns` bits) so the
/// sweep harness can assert run-to-run and parallel-vs-serial determinism.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunResult {
    /// Wall-clock time in nanoseconds (the cross-frequency metric).
    pub wall_ns: f64,
    /// Uncore cycles elapsed.
    pub uncore_cycles: u64,
    /// Big-core statistics, if a big core exists.
    pub big: Option<CoreStats>,
    /// Little-core statistics (empty in vector mode, where they are lanes).
    pub littles: Vec<CoreStats>,
    /// VLITTLE lane statistics (Figure 7 breakdowns), `1b-4VL` only.
    pub lanes: Vec<CoreStats>,
    /// Total instruction fetch groups (L1I reads) across all cores —
    /// Figure 5's quantity.
    pub fetch_groups: u64,
    /// Memory-hierarchy statistics — Figure 6's `data_reqs` lives here.
    pub mem: MemStats,
    /// Work-stealing runtime statistics for task runs.
    pub runtime: Option<RuntimeStats>,
}

impl RunResult {
    /// Speedup of this run over a baseline run (by wall time).
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        base.wall_ns / self.wall_ns
    }

    /// Sum of a lane-breakdown category across lanes (Figure 7).
    pub fn lane_total(&self, kind: bvl_core::types::StallKind) -> u64 {
        self.lanes.iter().map(|l| l.of(kind)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        let fast = RunResult {
            wall_ns: 50.0,
            ..RunResult::default()
        };
        let slow = RunResult {
            wall_ns: 100.0,
            ..RunResult::default()
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }
}
