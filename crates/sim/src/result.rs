//! Simulation results.

use bvl_core::types::CoreStats;
use bvl_mem::MemStats;
use bvl_obs::StatsSnapshot;
use bvl_runtime::RuntimeStats;

/// Everything one run reports.
///
/// `PartialEq` compares every field (including exact `wall_ns` bits) so the
/// sweep harness can assert run-to-run and parallel-vs-serial determinism.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunResult {
    /// Wall-clock time in nanoseconds (the cross-frequency metric).
    pub wall_ns: f64,
    /// Uncore cycles elapsed.
    pub uncore_cycles: u64,
    /// Big-core statistics, if a big core exists.
    pub big: Option<CoreStats>,
    /// Little-core statistics (empty in vector mode, where they are lanes).
    pub littles: Vec<CoreStats>,
    /// VLITTLE lane statistics (Figure 7 breakdowns), `1b-4VL` only.
    pub lanes: Vec<CoreStats>,
    /// Total instruction fetch groups (L1I reads) across all cores —
    /// Figure 5's quantity.
    pub fetch_groups: u64,
    /// Memory-hierarchy statistics — Figure 6's `data_reqs` lives here.
    pub mem: MemStats,
    /// Work-stealing runtime statistics for task runs.
    pub runtime: Option<RuntimeStats>,
    /// The unified per-component counter snapshot (`sys.little3.l1d.miss`
    /// style paths — see `DESIGN.md` §4.10 for the schema). This is the
    /// single source every figure module reads; the struct fields above
    /// remain as typed convenience views of the same numbers.
    pub stats: StatsSnapshot,
}

impl RunResult {
    /// Speedup of this run over a baseline run (by wall time).
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        base.wall_ns / self.wall_ns
    }

    /// The counter registered at `path`, 0 when the component did not
    /// exist in this run (see [`StatsSnapshot::value`]).
    pub fn stat(&self, path: &str) -> u64 {
        self.stats.value(path)
    }

    /// Sum of a lane-breakdown category across lanes (Figure 7), read
    /// from the snapshot's `sys.lane{i}.breakdown.{label}` paths.
    pub fn lane_total(&self, kind: bvl_core::types::StallKind) -> u64 {
        self.stats
            .sum_matching("sys.lane", &format!(".breakdown.{}", kind.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_core::types::StallKind;

    #[test]
    fn speedup_math() {
        let fast = RunResult {
            wall_ns: 50.0,
            ..RunResult::default()
        };
        let slow = RunResult {
            wall_ns: 100.0,
            ..RunResult::default()
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lane_total_reads_snapshot() {
        let r = RunResult {
            stats: StatsSnapshot::from_entries(vec![
                ("sys.lane0.breakdown.busy".into(), 3),
                ("sys.lane1.breakdown.busy".into(), 4),
                ("sys.lane1.breakdown.raw_mem".into(), 9),
                ("sys.big.breakdown.busy".into(), 100),
            ]),
            ..RunResult::default()
        };
        assert_eq!(r.lane_total(StallKind::Busy), 7);
        assert_eq!(r.lane_total(StallKind::RawMem), 9);
        assert_eq!(r.lane_total(StallKind::Simd), 0);
        assert_eq!(r.stat("sys.big.breakdown.busy"), 100);
        assert_eq!(r.stat("sys.absent"), 0);
    }
}
