//! System selection and simulation parameters.

use bvl_vengine::EngineParams;

/// The seven evaluated systems (paper Table III).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SystemKind {
    /// One little core.
    L1,
    /// One big core.
    B1,
    /// Big core with the integrated 128-bit vector unit.
    BIv,
    /// Big + four little cores, no vector support.
    B4L,
    /// Big with integrated vector unit + four little cores.
    BIv4L,
    /// Big + decoupled 2048-bit vector engine.
    BDv,
    /// big.VLITTLE: big + four reconfigurable little cores.
    B4Vl,
}

impl SystemKind {
    /// All systems, in the paper's Figure 4 order.
    pub const ALL: [SystemKind; 7] = [
        SystemKind::L1,
        SystemKind::B1,
        SystemKind::BIv,
        SystemKind::B4L,
        SystemKind::BIv4L,
        SystemKind::BDv,
        SystemKind::B4Vl,
    ];

    /// The paper's label for this system.
    pub const fn label(self) -> &'static str {
        match self {
            SystemKind::L1 => "1L",
            SystemKind::B1 => "1b",
            SystemKind::BIv => "1bIV",
            SystemKind::B4L => "1b-4L",
            SystemKind::BIv4L => "1bIV-4L",
            SystemKind::BDv => "1bDV",
            SystemKind::B4Vl => "1b-4VL",
        }
    }

    /// Number of little cores in the cluster.
    pub const fn num_little(self) -> usize {
        match self {
            SystemKind::L1 => 1,
            SystemKind::B1 | SystemKind::BIv | SystemKind::BDv => 0,
            SystemKind::B4L | SystemKind::BIv4L | SystemKind::B4Vl => 4,
        }
    }

    /// Whether a big core is present.
    pub const fn has_big(self) -> bool {
        !matches!(self, SystemKind::L1)
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-cluster clock frequencies in GHz (paper Table VII levels).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClockConfig {
    /// Big-cluster frequency.
    pub big_ghz: f64,
    /// Little-cluster frequency (also clocks attached vector engines built
    /// from the little cluster; the IVU/DVE follow the big core).
    pub little_ghz: f64,
    /// Uncore (caches/NoC/DRAM) frequency.
    pub uncore_ghz: f64,
}

impl Default for ClockConfig {
    fn default() -> Self {
        // Section V isolates microarchitecture by clocking everything at
        // 1 GHz.
        ClockConfig {
            big_ghz: 1.0,
            little_ghz: 1.0,
            uncore_ghz: 1.0,
        }
    }
}

impl ClockConfig {
    /// Clock period in femtoseconds.
    pub fn period_fs(ghz: f64) -> u64 {
        assert!(ghz > 0.0, "frequency must be positive");
        (1.0e6 / ghz).round() as u64
    }
}

/// Everything configurable about one simulation run.
#[derive(Clone, Debug)]
pub struct SimParams {
    /// Cluster clocks.
    pub clocks: ClockConfig,
    /// VLITTLE engine geometry/queues (used by `1b-4VL` only). The
    /// Figure 7 chime/packing ablations and the Figure 8 queue sweep plug
    /// in here.
    pub engine: EngineParams,
    /// Hard cap on simulated uncore cycles before the run aborts.
    pub max_uncore_cycles: u64,
    /// Force the naive cycle-by-cycle loop, disabling quiescence-aware
    /// tick skipping. Results are bit-identical either way (the
    /// skip-equivalence test suite enforces it); this exists for
    /// debugging and as the oracle side of that suite.
    pub no_skip: bool,
    /// Collect a structured event trace of the run (see `bvl_obs::trace`).
    /// Off by default: the emit sites compile down to a branch on a
    /// thread-local bool, and the collected log is only returned by the
    /// `simulate_traced` entry point.
    pub trace: bool,
    /// Emit a whole-system checkpoint (`crate::snapshot::SysState`) every
    /// this-many uncore cycles; 0 (the default) disables checkpointing.
    /// Taking a checkpoint is read-only — results are byte-identical with
    /// it on or off — and the cadence is deliberately excluded from the
    /// checkpoint's own parameter fingerprint, so a run may be resumed
    /// under a different cadence than the one that saved it.
    pub checkpoint_every: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            clocks: ClockConfig::default(),
            engine: EngineParams::paper_default(),
            max_uncore_cycles: 400_000_000,
            no_skip: false,
            trace: false,
            checkpoint_every: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(SystemKind::B4Vl.label(), "1b-4VL");
        assert_eq!(SystemKind::ALL.len(), 7);
    }

    #[test]
    fn periods() {
        assert_eq!(ClockConfig::period_fs(1.0), 1_000_000);
        assert_eq!(ClockConfig::period_fs(2.0), 500_000);
        assert_eq!(ClockConfig::period_fs(0.8), 1_250_000);
    }

    #[test]
    fn cluster_shapes() {
        assert_eq!(SystemKind::L1.num_little(), 1);
        assert!(!SystemKind::L1.has_big());
        assert_eq!(SystemKind::B4Vl.num_little(), 4);
    }
}
