//! Whole-system checkpoint blobs.
//!
//! A [`SysState`] captures everything the tick loop needs to resume a run
//! mid-flight: every ticked component's mutable state (cores, engines,
//! memory hierarchy, runtime, shared memory image) plus the loop's own
//! control state (domain cycle counters, worker scheduling states, skip
//! planner back-off). The contract — specified in `DESIGN.md` §4.11 and
//! enforced by the `restore_equivalence` suite — is:
//!
//! > Restoring a checkpoint taken at uncore cycle `K` and running to
//! > completion yields a [`crate::RunResult`], [`crate::FinalState`], and
//! > stats snapshot byte-identical to the straight-through run.
//!
//! Deliberately **outside** the contract: the event-trace ring
//! (`bvl_obs::trace` is a bounded observability side channel, re-armed
//! per run) and [`crate::SkipStats`]' split between the pre- and
//! post-checkpoint segments (the restored run carries the saved counters
//! forward, so the *totals* match).
//!
//! The blob is framed by `bvl-snap` (magic, version, length, checksum),
//! so truncated or stale-version checkpoints fail [`SysState::from_bytes`]
//! with a typed [`SnapError`] instead of restoring garbage. A header
//! carrying the system kind and fingerprints of the simulation parameters
//! and workload guards against restoring a checkpoint into a differently
//! configured system.

use crate::config::{SimParams, SystemKind};
use bvl_snap::{fnv1a, frame, unframe, SnapError, SnapReader, SnapWriter};
use bvl_workloads::Workload;

/// A serializable whole-system checkpoint (see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SysState {
    kind: SystemKind,
    params_fp: u64,
    workload_fp: u64,
    cyc_u: u64,
    body: Vec<u8>,
}

impl SysState {
    pub(crate) fn new(
        kind: SystemKind,
        params_fp: u64,
        workload_fp: u64,
        cyc_u: u64,
        body: Vec<u8>,
    ) -> Self {
        SysState {
            kind,
            params_fp,
            workload_fp,
            cyc_u,
            body,
        }
    }

    /// The system kind the checkpoint was taken on.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// The uncore cycle the checkpoint was taken at.
    pub fn uncore_cycle(&self) -> u64 {
        self.cyc_u
    }

    pub(crate) fn params_fp(&self) -> u64 {
        self.params_fp
    }

    pub(crate) fn workload_fp(&self) -> u64 {
        self.workload_fp
    }

    pub(crate) fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serializes the checkpoint into a framed, checksummed blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u8(kind_tag(self.kind));
        w.u64(self.params_fp);
        w.u64(self.workload_fp);
        w.u64(self.cyc_u);
        w.bytes(&self.body);
        frame(&w.into_bytes())
    }

    /// Validates a framed blob and decodes the checkpoint header.
    ///
    /// The component payload itself is only decoded — against a freshly
    /// built system of the matching shape — when the checkpoint is handed
    /// to [`crate::system::simulate_resumable`].
    ///
    /// # Errors
    ///
    /// Any framing violation (bad magic, version mismatch, truncation,
    /// checksum mismatch) or an unknown system-kind tag yields the
    /// corresponding typed [`SnapError`]; this function never panics on
    /// arbitrary input.
    pub fn from_bytes(blob: &[u8]) -> Result<SysState, SnapError> {
        let payload = unframe(blob)?;
        let mut r = SnapReader::new(payload);
        let kind = kind_from_tag(r.u8()?)?;
        let params_fp = r.u64()?;
        let workload_fp = r.u64()?;
        let cyc_u = r.u64()?;
        let body = r.bytes()?.to_vec();
        r.finish()?;
        Ok(SysState {
            kind,
            params_fp,
            workload_fp,
            cyc_u,
            body,
        })
    }
}

fn kind_tag(kind: SystemKind) -> u8 {
    match kind {
        SystemKind::L1 => 0,
        SystemKind::B1 => 1,
        SystemKind::BIv => 2,
        SystemKind::B4L => 3,
        SystemKind::BIv4L => 4,
        SystemKind::BDv => 5,
        SystemKind::B4Vl => 6,
    }
}

fn kind_from_tag(tag: u8) -> Result<SystemKind, SnapError> {
    Ok(match tag {
        0 => SystemKind::L1,
        1 => SystemKind::B1,
        2 => SystemKind::BIv,
        3 => SystemKind::B4L,
        4 => SystemKind::BIv4L,
        5 => SystemKind::BDv,
        6 => SystemKind::B4Vl,
        t => {
            return Err(SnapError::BadTag {
                ty: "SystemKind",
                tag: u64::from(t),
            })
        }
    })
}

/// Fingerprint of everything in `params` that shapes simulation behavior.
///
/// The checkpoint cadence is zeroed first: it only controls *when*
/// checkpoints are emitted, never what the simulation computes, so a run
/// may legitimately be resumed under a different cadence. Tracing is
/// likewise excluded — the trace ring is outside the checkpoint contract.
pub(crate) fn params_fingerprint(params: &SimParams) -> u64 {
    let mut p = params.clone();
    p.checkpoint_every = 0;
    p.trace = false;
    fnv1a(format!("{p:?}").as_bytes())
}

/// Fingerprint of the workload identity (name, entry points, task-phase
/// count, memory-image size) — enough to reject restoring a checkpoint
/// into a different workload or a different problem scale. The memory
/// *contents* need no fingerprint: they are part of the checkpoint body.
pub(crate) fn workload_fingerprint(w: &Workload) -> u64 {
    let ident = format!(
        "{} serial={} vector={:?} phases={} mem={}",
        w.name,
        w.serial_entry,
        w.vector_entry,
        w.phases.len(),
        w.mem.len(),
    );
    fnv1a(ident.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SysState {
        SysState::new(SystemKind::B4Vl, 0xDEAD, 0xBEEF, 1234, vec![1, 2, 3, 4])
    }

    #[test]
    fn round_trip() {
        let s = sample();
        let blob = s.to_bytes();
        assert_eq!(SysState::from_bytes(&blob).expect("round trip"), s);
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let blob = sample().to_bytes();
        for cut in 0..blob.len() {
            let err = SysState::from_bytes(&blob[..cut]).expect_err("truncated");
            // Any typed error is acceptable; panicking or Ok is not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn version_mismatch_is_reported() {
        let mut blob = sample().to_bytes();
        blob[4] = blob[4].wrapping_add(1); // little-endian version field
        match SysState::from_bytes(&blob) {
            Err(SnapError::VersionMismatch { .. }) => {}
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_tag_is_rejected() {
        let mut w = SnapWriter::new();
        w.u8(99);
        w.u64(0);
        w.u64(0);
        w.u64(0);
        w.bytes(&[]);
        match SysState::from_bytes(&frame(&w.into_bytes())) {
            Err(SnapError::BadTag {
                ty: "SystemKind",
                tag: 99,
            }) => {}
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn cadence_and_trace_do_not_change_the_params_fingerprint() {
        let base = SimParams::default();
        let mut varied = base.clone();
        varied.checkpoint_every = 5_000;
        varied.trace = true;
        assert_eq!(params_fingerprint(&base), params_fingerprint(&varied));
        let mut different = base.clone();
        different.no_skip = true;
        assert_ne!(params_fingerprint(&base), params_fingerprint(&different));
    }
}
