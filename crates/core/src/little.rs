//! The single-issue in-order little core.
//!
//! Pipeline model: a one-line fetch buffer feeds a single decoded-
//! instruction slot; issue is gated by a register scoreboard (RAW), the
//! unpipelined multiply/divide unit (structural), one outstanding load and
//! a small store buffer (structural), and the L1D port. Branches use a
//! static backward-taken / forward-not-taken predictor with a fixed
//! redirect penalty on mispredicts.
//!
//! Functional semantics come from the embedded golden [`Machine`]
//! (execute-at-decode); the timing model replays its effects.

use crate::fetch::FetchUnit;
use crate::types::{CoreStats, Quiescence, StallKind};
use bvl_isa::asm::Program;
use bvl_isa::exec::{ExecError, StepInfo};
use bvl_isa::meta::FuClass;
use bvl_isa::predecode::{DestReg, InstrMeta, PreDecoded, SrcReg};
use bvl_isa::reg::NUM_REGS;
use bvl_isa::Machine;
use bvl_mem::{AccessKind, MemHierarchy, MemReq, PortId, SharedMem};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::HashSet;
use std::sync::Arc;

/// "Value is an outstanding load" sentinel in the scoreboard.
const LOAD_PENDING: u64 = u64::MAX;

/// Little-core configuration.
#[derive(Clone, Copy, Debug)]
pub struct LittleParams {
    /// Redirect penalty on a branch mispredict, cycles.
    pub branch_penalty: u64,
    /// Store-buffer entries (outstanding stores).
    pub store_buffer: usize,
}

impl Default for LittleParams {
    fn default() -> Self {
        LittleParams {
            branch_penalty: 2,
            store_buffer: 4,
        }
    }
}

#[derive(Debug)]
struct Pending {
    info: StepInfo,
}

snap_struct!(Pending { info });

/// The in-order little core timing model.
#[derive(Debug)]
pub struct LittleCore {
    id: u8,
    params: LittleParams,
    machine: Machine<SharedMem>,
    program: Arc<Program>,
    pre: Arc<PreDecoded>,
    fetch: FetchUnit,
    x_ready: [u64; NUM_REGS],
    f_ready: [u64; NUM_REGS],
    muldiv_busy_until: u64,
    pending: Option<Pending>,
    load_wait: Option<(u64, DestReg)>,
    outstanding_stores: HashSet<u64>,
    next_mem_id: u64,
    stats: CoreStats,
    halted: bool,
}

impl LittleCore {
    /// Creates little core `id` executing `program` on the shared memory.
    ///
    /// `vlen_bits` sizes the golden machine's vector state; the little core
    /// itself never executes vector instructions (scalar task variants
    /// only), but the machine type requires it.
    pub fn new(
        id: u8,
        mem: SharedMem,
        program: Arc<Program>,
        text_base: u64,
        line_bytes: u64,
        params: LittleParams,
    ) -> Self {
        LittleCore {
            id,
            params,
            machine: Machine::new(mem, 64),
            pre: program.predecoded(),
            program,
            fetch: FetchUnit::new(PortId::LittleFetch(id), text_base, line_bytes),
            x_ready: [0; NUM_REGS],
            f_ready: [0; NUM_REGS],
            muldiv_busy_until: 0,
            pending: None,
            load_wait: None,
            outstanding_stores: HashSet::new(),
            next_mem_id: 0,
            stats: CoreStats::default(),
            halted: true, // idle until assigned work
        }
    }

    /// This core's cluster index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Fetch groups delivered (L1I reads).
    pub fn fetch_groups(&self) -> u64 {
        self.fetch.fetch_groups
    }

    /// The golden machine (for argument setup and result inspection).
    pub fn machine_mut(&mut self) -> &mut Machine<SharedMem> {
        &mut self.machine
    }

    /// Borrow of the golden machine.
    pub fn machine(&self) -> &Machine<SharedMem> {
        &self.machine
    }

    /// Snapshot of the core's final architectural state for differential
    /// comparison. Only meaningful once [`LittleCore::done`] — while the
    /// pipeline is in flight the golden machine runs *ahead* of
    /// architectural commit (execute-at-dispatch).
    pub fn arch_snapshot(&self) -> bvl_isa::exec::ArchSnapshot {
        self.machine.snapshot()
    }

    /// True when the core has halted (finished its assigned work) and the
    /// pipeline has fully drained.
    pub fn done(&self) -> bool {
        self.halted
            && self.pending.is_none()
            && self.load_wait.is_none()
            && self.outstanding_stores.is_empty()
    }

    /// True when the core has architecturally halted (it may still have
    /// stores in flight; see [`LittleCore::done`]).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Assigns new work: jump to `pc` and run until `halt`.
    pub fn assign(&mut self, pc: u32) {
        self.machine.set_pc(pc);
        self.halted = false;
    }

    /// Advances the core one cycle against the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the program escapes its bounds without halting (a
    /// workload-authoring bug surfaced loudly).
    pub fn tick(&mut self, now: u64, hier: &mut MemHierarchy) {
        // Drain memory responses first (they may unblock this cycle).
        self.fetch.drain_responses(hier);
        while let Some(resp) = hier.pop_response(PortId::LittleData(self.id)) {
            if resp.is_store {
                self.outstanding_stores.remove(&resp.id);
            } else if let Some((id, dest)) = self.load_wait {
                debug_assert_eq!(id, resp.id, "single outstanding load");
                match dest {
                    DestReg::X(r) => self.x_ready[r as usize] = now,
                    DestReg::F(r) => self.f_ready[r as usize] = now,
                    DestReg::None => {}
                }
                self.load_wait = None;
            }
        }

        if self.halted {
            return; // idle cores burn no modeled cycles
        }

        // Decode: refill the pending slot from the front-end.
        if self.pending.is_none() {
            let pc = self.machine.pc();
            if self.fetch.available(now, pc, hier) {
                self.fetch.deliver();
                self.stats.fetch_groups += 1;
                match self.machine.step(&self.program) {
                    Ok(info) => self.pending = Some(Pending { info }),
                    Err(ExecError::PcOutOfRange(pc)) => {
                        panic!("little core {} escaped program at pc {pc}", self.id)
                    }
                    Err(e) => panic!("little core {} exec error: {e}", self.id),
                }
            } else {
                self.stats.account(StallKind::Misc); // front-end starvation
                return;
            }
        }

        let stall = self.try_issue(now, hier);
        self.stats.account(stall);
    }

    fn try_issue(&mut self, now: u64, hier: &mut MemHierarchy) -> StallKind {
        let info = &self.pending.as_ref().expect("pending refilled").info;
        let instr = info.instr;
        let im = *self.pre.at(info.pc);
        debug_assert!(
            !im.is_vector,
            "little cores execute scalar task variants only"
        );
        let meta = im.meta;

        // RAW hazards via the scoreboard.
        if let Some(kind) = self.source_hazard(now, &im) {
            return kind;
        }

        // Structural hazards.
        if meta.fu == FuClass::MulDiv && self.muldiv_busy_until > now {
            return StallKind::Struct;
        }
        let is_load = instr.is_scalar_mem() && !info.mem.is_empty() && !info.mem[0].is_store;
        let is_store = instr.is_scalar_mem() && !info.mem.is_empty() && info.mem[0].is_store;
        if is_load && self.load_wait.is_some() {
            return StallKind::Struct;
        }
        if is_store && self.outstanding_stores.len() >= self.params.store_buffer {
            return StallKind::Struct;
        }

        // Memory issue (may be rejected by the L1D port).
        if is_load || is_store {
            let acc = info.mem[0];
            self.next_mem_id += 1;
            let req = MemReq {
                id: self.next_mem_id,
                addr: acc.addr,
                size: acc.size,
                is_store,
                kind: AccessKind::Data,
                port: PortId::LittleData(self.id),
            };
            if !hier.request(req) {
                return StallKind::Struct;
            }
            if is_load {
                let dest = im.scoreboard_dest;
                self.set_dest_pending(dest);
                self.load_wait = Some((self.next_mem_id, dest));
            } else {
                self.outstanding_stores.insert(self.next_mem_id);
            }
        } else {
            // Register result ready after the FU latency.
            self.set_dest_ready(im.scoreboard_dest, now + u64::from(meta.latency));
            if meta.fu == FuClass::MulDiv {
                self.muldiv_busy_until = now + u64::from(meta.latency);
            }
        }

        // Control flow.
        if im.is_control {
            let info = &self.pending.as_ref().expect("pending").info;
            if let bvl_isa::instr::Instr::Branch { target, .. } = instr {
                self.stats.branches += 1;
                let predicted_taken = target <= info.pc; // backward-taken
                let actually_taken = info.taken.is_some();
                if predicted_taken != actually_taken {
                    self.stats.mispredicts += 1;
                    self.fetch.redirect(now, self.params.branch_penalty);
                }
            } else {
                // Unconditional jumps: assume the BTB redirects in time.
            }
        }

        let info = self.pending.take().expect("pending").info;
        if info.halted {
            self.halted = true;
            bvl_obs::trace::emit(now, "little", self.id as u16, "halt", self.stats.retired);
        }
        self.stats.retired += 1;
        StallKind::Busy
    }

    fn source_hazard(&self, now: u64, im: &InstrMeta) -> Option<StallKind> {
        let mut worst: Option<StallKind> = None;
        for &s in im.srcs() {
            let t = self.src_ready(s);
            if t == LOAD_PENDING {
                worst = Some(StallKind::RawMem);
            } else if t > now && worst.is_none() {
                worst = Some(StallKind::RawLlfu);
            }
        }
        worst
    }

    fn src_ready(&self, s: SrcReg) -> u64 {
        match s {
            SrcReg::X(r) => self.x_ready[r as usize],
            SrcReg::F(r) => self.f_ready[r as usize],
        }
    }

    fn set_dest_ready(&mut self, dest: DestReg, at: u64) {
        match dest {
            DestReg::X(0) => {}
            DestReg::X(r) => self.x_ready[r as usize] = at,
            DestReg::F(r) => self.f_ready[r as usize] = at,
            DestReg::None => {}
        }
    }

    fn set_dest_pending(&mut self, dest: DestReg) {
        self.set_dest_ready(dest, LOAD_PENDING);
    }

    /// Reports whether ticking this core before some future cycle can do
    /// anything beyond repeating one constant stall accounting.
    ///
    /// Callers must additionally check the hierarchy for pending
    /// responses on this core's fetch/data ports: a quiescent core is
    /// woken by them (the reported window assumes none arrive).
    pub fn quiescence(&self, now: u64) -> Quiescence {
        if self.halted {
            // Idle or draining: halted ticks account nothing, and any
            // in-flight loads/stores complete via external responses.
            return Quiescence::Idle {
                until: None,
                account: None,
            };
        }
        let Some(p) = &self.pending else {
            let free_at = self.fetch.redirect_free_at();
            if now < free_at {
                // Redirect shadow: front-end starvation until it expires.
                return Quiescence::Idle {
                    until: Some(free_at),
                    account: Some(StallKind::Misc),
                };
            }
            if self.fetch.has_line(self.machine.pc()) {
                return Quiescence::Active; // would deliver and decode now
            }
            if self.fetch.fetch_pending() {
                // Waiting on the L1I line (an external response).
                return Quiescence::Idle {
                    until: None,
                    account: Some(StallKind::Misc),
                };
            }
            return Quiescence::Active; // would issue the line fetch
        };
        self.issue_quiescence(now, &p.info)
    }

    /// Quiescence of a core stalled on its pending instruction. Mirrors
    /// the hazard checks of `try_issue` without side effects, in order.
    fn issue_quiescence(&self, now: u64, info: &StepInfo) -> Quiescence {
        let im = self.pre.at(info.pc);
        // RAW hazards: a pending-load source pins the stall at RawMem
        // until the (external) response; otherwise the latest LLFU ready
        // time is an exact internal deadline.
        let mut pending_load = false;
        let mut llfu_until = 0u64;
        for &s in im.srcs() {
            let t = self.src_ready(s);
            if t == LOAD_PENDING {
                pending_load = true;
            } else if t > now {
                llfu_until = llfu_until.max(t);
            }
        }
        if pending_load {
            return Quiescence::Idle {
                until: None,
                account: Some(StallKind::RawMem),
            };
        }
        if llfu_until > now {
            return Quiescence::Idle {
                until: Some(llfu_until),
                account: Some(StallKind::RawLlfu),
            };
        }
        if im.meta.fu == FuClass::MulDiv && self.muldiv_busy_until > now {
            return Quiescence::Idle {
                until: Some(self.muldiv_busy_until),
                account: Some(StallKind::Struct),
            };
        }
        let instr = info.instr;
        let is_load = instr.is_scalar_mem() && !info.mem.is_empty() && !info.mem[0].is_store;
        let is_store = instr.is_scalar_mem() && !info.mem.is_empty() && info.mem[0].is_store;
        if is_load && self.load_wait.is_some() {
            return Quiescence::Idle {
                until: None,
                account: Some(StallKind::Struct),
            };
        }
        if is_store && self.outstanding_stores.len() >= self.params.store_buffer {
            return Quiescence::Idle {
                until: None,
                account: Some(StallKind::Struct),
            };
        }
        Quiescence::Active // would issue (or retry the L1D port) now
    }

    /// Batch-accounts `cycles` skipped quiescent cycles. Callers must
    /// have observed an [`Quiescence::Idle`] with this `account` covering
    /// the whole window.
    pub fn skip_idle(&mut self, cycles: u64, account: Option<StallKind>) {
        if let Some(kind) = account {
            self.stats.account_many(kind, cycles);
        }
    }

    /// Appends the core's mutable state to a checkpoint. Configuration
    /// (`id`, `params`, program, ports) is not written — a restore target
    /// is built from the same [`LittleCore::new`] arguments.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.machine.save_state(w);
        self.fetch.save_state(w);
        self.x_ready.save(w);
        self.f_ready.save(w);
        self.muldiv_busy_until.save(w);
        self.pending.save(w);
        self.load_wait.save(w);
        // HashSet iteration is nondeterministic: encode sorted so equal
        // states always produce identical bytes.
        let mut stores: Vec<u64> = self.outstanding_stores.iter().copied().collect();
        stores.sort_unstable();
        stores.save(w);
        self.next_mem_id.save(w);
        self.stats.save(w);
        self.halted.save(w);
    }

    /// Restores state written by [`LittleCore::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.machine.restore_state(r)?;
        self.fetch.restore_state(r)?;
        self.x_ready = Snap::load(r)?;
        self.f_ready = Snap::load(r)?;
        self.muldiv_busy_until = Snap::load(r)?;
        self.pending = Snap::load(r)?;
        self.load_wait = Snap::load(r)?;
        let stores: Vec<u64> = Snap::load(r)?;
        self.outstanding_stores = stores.into_iter().collect();
        self.next_mem_id = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.halted = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::TEXT_BASE;
    use bvl_isa::asm::Assembler;
    use bvl_isa::reg::XReg;
    use bvl_mem::{HierConfig, SimMemory};

    fn x(i: u8) -> XReg {
        XReg::new(i)
    }

    fn run_core(a: &Assembler, mem: SimMemory) -> (LittleCore, u64, SharedMem) {
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(mem);
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut core = LittleCore::new(
            0,
            shared.clone(),
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            LittleParams::default(),
        );
        core.assign(0);
        for t in 0..2_000_000 {
            hier.tick(t);
            core.tick(t, &mut hier);
            if core.done() {
                return (core, t, shared);
            }
        }
        panic!("core did not finish");
    }

    #[test]
    fn straight_line_code_retires_all() {
        let mut a = Assembler::new();
        a.li(x(1), 1);
        a.li(x(2), 2);
        a.add(x(3), x(1), x(2));
        a.halt();
        let (core, cycles, _) = run_core(&a, SimMemory::new(1 << 20));
        assert_eq!(core.stats().retired, 4);
        assert_eq!(core.machine().xreg(x(3)), 3);
        assert!(cycles < 1000);
    }

    #[test]
    fn loop_executes_with_reasonable_ipc() {
        let mut a = Assembler::new();
        a.li(x(1), 0);
        a.li(x(2), 100);
        a.label("loop");
        a.addi(x(1), x(1), 1);
        a.bne(x(1), x(2), "loop");
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        assert_eq!(core.stats().retired, 203);
        // Tight ALU loop after warmup: IPC should be decent but < 1.
        assert!(core.stats().ipc() > 0.4, "ipc = {}", core.stats().ipc());
        assert!(core.stats().branches == 100);
        // Backward-taken predictor mispredicts only the exit.
        assert_eq!(core.stats().mispredicts, 1);
    }

    #[test]
    fn load_use_stall_is_raw_mem() {
        let mut a = Assembler::new();
        a.li(x(1), 0x2000);
        a.lw(x(2), x(1), 0); // cold miss -> long stall
        a.addi(x(3), x(2), 1); // load-use dependency
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        assert!(
            core.stats().of(StallKind::RawMem) > 50,
            "raw_mem = {}",
            core.stats().of(StallKind::RawMem)
        );
    }

    #[test]
    fn div_dependency_is_raw_llfu() {
        let mut a = Assembler::new();
        a.li(x(1), 100);
        a.li(x(2), 7);
        a.div(x(3), x(1), x(2));
        a.addi(x(4), x(3), 1);
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        assert!(core.stats().of(StallKind::RawLlfu) >= 10);
    }

    #[test]
    fn stores_reach_shared_memory() {
        let mut a = Assembler::new();
        a.li(x(1), 0x3000);
        a.li(x(2), 99);
        a.sw(x(2), x(1), 0);
        a.halt();
        let (_, _, shared) = run_core(&a, SimMemory::new(1 << 20));
        shared.with(|m| assert_eq!(bvl_isa::mem::Memory::read_uint(m, 0x3000, 4), 99));
    }

    #[test]
    fn back_to_back_memory_ops_respect_single_load() {
        let mut a = Assembler::new();
        a.li(x(1), 0x4000);
        for i in 0..8 {
            a.lw(x(2), x(1), i * 4);
        }
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        // 8 independent loads: structural single-load limit forces
        // serialization; struct stalls must appear.
        assert!(core.stats().of(StallKind::Struct) > 0);
    }

    #[test]
    fn quiescence_predicts_naive_ticks() {
        // Oracle for the event-skip contract: whenever the core claims
        // quiescence and nothing external (hierarchy event or pending
        // response) is due, the naive tick must retire nothing and account
        // exactly the predicted stall kind.
        let mut a = Assembler::new();
        a.li(x(1), 0x2000);
        a.lw(x(2), x(1), 0); // cold miss: long RawMem window
        a.addi(x(3), x(2), 1);
        a.li(x(4), 100);
        a.li(x(5), 7);
        a.div(x(6), x(4), x(5)); // RawLlfu + muldiv structural windows
        a.mul(x(7), x(6), x(5));
        a.addi(x(8), x(7), 1);
        a.sw(x(8), x(1), 4);
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(SimMemory::new(1 << 20));
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut core = LittleCore::new(
            0,
            shared,
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            LittleParams::default(),
        );
        core.assign(0);
        let mut checked = 0u64;
        for t in 0..2_000_000u64 {
            let q = core.quiescence(t);
            let external = hier.next_event(t).is_some_and(|e| e <= t)
                || hier.response_pending(PortId::LittleFetch(0))
                || hier.response_pending(PortId::LittleData(0));
            hier.tick(t);
            let before = *core.stats();
            core.tick(t, &mut hier);
            if !external {
                if let crate::types::Quiescence::Idle { until, account } = q {
                    if until.is_none_or(|u| t < u) {
                        checked += 1;
                        let mut expect = before;
                        if let Some(kind) = account {
                            expect.account(kind);
                        }
                        assert_eq!(*core.stats(), expect, "t={t} q={q:?}");
                    }
                }
            }
            if core.done() {
                assert!(checked > 50, "quiescent windows exercised: {checked}");
                return;
            }
        }
        panic!("core did not finish");
    }

    #[test]
    fn assigning_twice_reuses_the_core() {
        let mut a = Assembler::new();
        a.label("task");
        a.addi(x(5), x(5), 1);
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(SimMemory::new(1 << 20));
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut core = LittleCore::new(
            0,
            shared,
            prog.clone(),
            TEXT_BASE,
            hier.line_bytes(),
            LittleParams::default(),
        );
        let mut t = 0;
        for _ in 0..3 {
            core.assign(prog.label("task").unwrap());
            while !core.done() {
                hier.tick(t);
                core.tick(t, &mut hier);
                t += 1;
                assert!(t < 100_000);
            }
        }
        assert_eq!(core.machine().xreg(x(5)), 3);
    }
}
