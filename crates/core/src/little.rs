//! The single-issue in-order little core.
//!
//! Pipeline model: a one-line fetch buffer feeds a single decoded-
//! instruction slot; issue is gated by a register scoreboard (RAW), the
//! unpipelined multiply/divide unit (structural), one outstanding load and
//! a small store buffer (structural), and the L1D port. Branches use a
//! static backward-taken / forward-not-taken predictor with a fixed
//! redirect penalty on mispredicts.
//!
//! Functional semantics come from the embedded golden [`Machine`]
//! (execute-at-decode); the timing model replays its effects.

use crate::fetch::FetchUnit;
use crate::types::{CoreStats, StallKind};
use bvl_isa::asm::Program;
use bvl_isa::exec::{ExecError, StepInfo};
use bvl_isa::meta::{scalar_meta, FuClass};
use bvl_isa::reg::NUM_REGS;
use bvl_isa::Machine;
use bvl_mem::{AccessKind, MemHierarchy, MemReq, PortId, SharedMem};
use std::collections::HashSet;
use std::sync::Arc;

/// "Value is an outstanding load" sentinel in the scoreboard.
const LOAD_PENDING: u64 = u64::MAX;

/// Little-core configuration.
#[derive(Clone, Copy, Debug)]
pub struct LittleParams {
    /// Redirect penalty on a branch mispredict, cycles.
    pub branch_penalty: u64,
    /// Store-buffer entries (outstanding stores).
    pub store_buffer: usize,
}

impl Default for LittleParams {
    fn default() -> Self {
        LittleParams {
            branch_penalty: 2,
            store_buffer: 4,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Dest {
    X(usize),
    F(usize),
    None,
}

#[derive(Debug)]
struct Pending {
    info: StepInfo,
}

/// The in-order little core timing model.
#[derive(Debug)]
pub struct LittleCore {
    id: u8,
    params: LittleParams,
    machine: Machine<SharedMem>,
    program: Arc<Program>,
    fetch: FetchUnit,
    x_ready: [u64; NUM_REGS],
    f_ready: [u64; NUM_REGS],
    muldiv_busy_until: u64,
    pending: Option<Pending>,
    load_wait: Option<(u64, Dest)>,
    outstanding_stores: HashSet<u64>,
    next_mem_id: u64,
    stats: CoreStats,
    halted: bool,
}

impl LittleCore {
    /// Creates little core `id` executing `program` on the shared memory.
    ///
    /// `vlen_bits` sizes the golden machine's vector state; the little core
    /// itself never executes vector instructions (scalar task variants
    /// only), but the machine type requires it.
    pub fn new(
        id: u8,
        mem: SharedMem,
        program: Arc<Program>,
        text_base: u64,
        line_bytes: u64,
        params: LittleParams,
    ) -> Self {
        LittleCore {
            id,
            params,
            machine: Machine::new(mem, 64),
            program,
            fetch: FetchUnit::new(PortId::LittleFetch(id), text_base, line_bytes),
            x_ready: [0; NUM_REGS],
            f_ready: [0; NUM_REGS],
            muldiv_busy_until: 0,
            pending: None,
            load_wait: None,
            outstanding_stores: HashSet::new(),
            next_mem_id: 0,
            stats: CoreStats::default(),
            halted: true, // idle until assigned work
        }
    }

    /// This core's cluster index.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Fetch groups delivered (L1I reads).
    pub fn fetch_groups(&self) -> u64 {
        self.fetch.fetch_groups
    }

    /// The golden machine (for argument setup and result inspection).
    pub fn machine_mut(&mut self) -> &mut Machine<SharedMem> {
        &mut self.machine
    }

    /// Borrow of the golden machine.
    pub fn machine(&self) -> &Machine<SharedMem> {
        &self.machine
    }

    /// True when the core has halted (finished its assigned work) and the
    /// pipeline has fully drained.
    pub fn done(&self) -> bool {
        self.halted
            && self.pending.is_none()
            && self.load_wait.is_none()
            && self.outstanding_stores.is_empty()
    }

    /// True when the core has architecturally halted (it may still have
    /// stores in flight; see [`LittleCore::done`]).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Assigns new work: jump to `pc` and run until `halt`.
    pub fn assign(&mut self, pc: u32) {
        self.machine.set_pc(pc);
        self.halted = false;
    }

    /// Advances the core one cycle against the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the program escapes its bounds without halting (a
    /// workload-authoring bug surfaced loudly).
    pub fn tick(&mut self, now: u64, hier: &mut MemHierarchy) {
        // Drain memory responses first (they may unblock this cycle).
        self.fetch.drain_responses(hier);
        while let Some(resp) = hier.pop_response(PortId::LittleData(self.id)) {
            if resp.is_store {
                self.outstanding_stores.remove(&resp.id);
            } else if let Some((id, dest)) = self.load_wait {
                debug_assert_eq!(id, resp.id, "single outstanding load");
                match dest {
                    Dest::X(r) => self.x_ready[r] = now,
                    Dest::F(r) => self.f_ready[r] = now,
                    Dest::None => {}
                }
                self.load_wait = None;
            }
        }

        if self.halted {
            return; // idle cores burn no modeled cycles
        }

        // Decode: refill the pending slot from the front-end.
        if self.pending.is_none() {
            let pc = self.machine.pc();
            if self.fetch.available(now, pc, hier) {
                self.fetch.deliver();
                self.stats.fetch_groups += 1;
                match self.machine.step(&self.program) {
                    Ok(info) => self.pending = Some(Pending { info }),
                    Err(ExecError::PcOutOfRange(pc)) => {
                        panic!("little core {} escaped program at pc {pc}", self.id)
                    }
                    Err(e) => panic!("little core {} exec error: {e}", self.id),
                }
            } else {
                self.stats.account(StallKind::Misc); // front-end starvation
                return;
            }
        }

        let stall = self.try_issue(now, hier);
        self.stats.account(stall);
    }

    fn try_issue(&mut self, now: u64, hier: &mut MemHierarchy) -> StallKind {
        let info = &self.pending.as_ref().expect("pending refilled").info;
        let instr = info.instr;
        debug_assert!(
            !instr.is_vector(),
            "little cores execute scalar task variants only"
        );
        let meta = scalar_meta(&instr);

        // RAW hazards via the scoreboard.
        if let Some(kind) = self.source_hazard(now, &instr) {
            return kind;
        }

        // Structural hazards.
        if meta.fu == FuClass::MulDiv && self.muldiv_busy_until > now {
            return StallKind::Struct;
        }
        let is_load = instr.is_scalar_mem() && !info.mem.is_empty() && !info.mem[0].is_store;
        let is_store = instr.is_scalar_mem() && !info.mem.is_empty() && info.mem[0].is_store;
        if is_load && self.load_wait.is_some() {
            return StallKind::Struct;
        }
        if is_store && self.outstanding_stores.len() >= self.params.store_buffer {
            return StallKind::Struct;
        }

        // Memory issue (may be rejected by the L1D port).
        if is_load || is_store {
            let acc = info.mem[0];
            self.next_mem_id += 1;
            let req = MemReq {
                id: self.next_mem_id,
                addr: acc.addr,
                size: acc.size,
                is_store,
                kind: AccessKind::Data,
                port: PortId::LittleData(self.id),
            };
            if !hier.request(req) {
                return StallKind::Struct;
            }
            if is_load {
                let dest = self.dest_of(&instr);
                self.set_dest_pending(dest);
                self.load_wait = Some((self.next_mem_id, dest));
            } else {
                self.outstanding_stores.insert(self.next_mem_id);
            }
        } else {
            // Register result ready after the FU latency.
            let dest = self.dest_of(&instr);
            self.set_dest_ready(dest, now + u64::from(meta.latency));
            if meta.fu == FuClass::MulDiv {
                self.muldiv_busy_until = now + u64::from(meta.latency);
            }
        }

        // Control flow.
        if instr.is_control() {
            let info = &self.pending.as_ref().expect("pending").info;
            if let bvl_isa::instr::Instr::Branch { target, .. } = instr {
                self.stats.branches += 1;
                let predicted_taken = target <= info.pc; // backward-taken
                let actually_taken = info.taken.is_some();
                if predicted_taken != actually_taken {
                    self.stats.mispredicts += 1;
                    self.fetch.redirect(now, self.params.branch_penalty);
                }
            } else {
                // Unconditional jumps: assume the BTB redirects in time.
            }
        }

        let info = self.pending.take().expect("pending").info;
        if info.halted {
            self.halted = true;
        }
        self.stats.retired += 1;
        StallKind::Busy
    }

    fn source_hazard(&self, now: u64, instr: &bvl_isa::instr::Instr) -> Option<StallKind> {
        let ready_times = source_ready_times(instr, &self.x_ready, &self.f_ready);
        let mut worst: Option<StallKind> = None;
        for t in ready_times {
            if t == LOAD_PENDING {
                worst = Some(StallKind::RawMem);
            } else if t > now && worst.is_none() {
                worst = Some(StallKind::RawLlfu);
            }
        }
        worst
    }

    fn dest_of(&self, instr: &bvl_isa::instr::Instr) -> Dest {
        use bvl_isa::instr::Instr::*;
        match *instr {
            Op { rd, .. } | OpImm { rd, .. } | Lui { rd, .. } | Load { rd, .. } => {
                Dest::X(rd.index())
            }
            Jal { rd, .. } | Jalr { rd, .. } => Dest::X(rd.index()),
            FpCmp { rd, .. } | FpCvtToInt { rd, .. } | FpMvToInt { rd, .. } => Dest::X(rd.index()),
            FpOp { rd, .. } | FpFma { rd, .. } | FpLoad { rd, .. } => Dest::F(rd.index()),
            FpCvtFromInt { rd, .. } | FpMvFromInt { rd, .. } => Dest::F(rd.index()),
            _ => Dest::None,
        }
    }

    fn set_dest_ready(&mut self, dest: Dest, at: u64) {
        match dest {
            Dest::X(0) => {}
            Dest::X(r) => self.x_ready[r] = at,
            Dest::F(r) => self.f_ready[r] = at,
            Dest::None => {}
        }
    }

    fn set_dest_pending(&mut self, dest: Dest) {
        self.set_dest_ready(dest, LOAD_PENDING);
    }
}

/// Scoreboard ready-times of every source register an instruction reads.
/// Shared with the big core's wakeup logic.
pub(crate) fn source_ready_times(
    instr: &bvl_isa::instr::Instr,
    x_ready: &[u64; NUM_REGS],
    f_ready: &[u64; NUM_REGS],
) -> Vec<u64> {
    use bvl_isa::instr::Instr::*;
    let mut out = Vec::with_capacity(3);
    let mut x = |r: bvl_isa::reg::XReg| {
        if r.index() != 0 {
            out.push(x_ready[r.index()]);
        }
    };
    match *instr {
        Op { rs1, rs2, .. } | Store { rs2, rs1, .. } | Branch { rs1, rs2, .. } => {
            x(rs1);
            x(rs2);
        }
        OpImm { rs1, .. }
        | Load { rs1, .. }
        | FpLoad { rs1, .. }
        | Jalr { rs1, .. }
        | FpCvtFromInt { rs1, .. }
        | FpMvFromInt { rs1, .. } => x(rs1),
        FpStore { rs1, rs2, .. } => {
            x(rs1);
            out.push(f_ready[rs2.index()]);
        }
        FpOp { rs1, rs2, .. } | FpCmp { rs1, rs2, .. } => {
            out.push(f_ready[rs1.index()]);
            out.push(f_ready[rs2.index()]);
        }
        FpFma { rs1, rs2, rs3, .. } => {
            out.push(f_ready[rs1.index()]);
            out.push(f_ready[rs2.index()]);
            out.push(f_ready[rs3.index()]);
        }
        FpCvtToInt { rs1, .. } | FpMvToInt { rs1, .. } => out.push(f_ready[rs1.index()]),
        // Vector instructions: scalar sources carried into the engine.
        VSetVl {
            avl: bvl_isa::instr::AvlSrc::Reg(r),
            ..
        } => x(r),
        VLoad { base, mode, .. } | VStore { base, mode, .. } => {
            x(base);
            if let bvl_isa::instr::VMemMode::Strided(s) = mode {
                x(s);
            }
        }
        VArith { src1, .. } | VCmp { src1, .. } => {
            if let Some(r) = src1.xreg() {
                x(r);
            }
            if let Some(r) = src1.freg() {
                out.push(f_ready[r.index()]);
            }
        }
        VSlideUp { amt, .. } | VSlideDown { amt, .. } => x(amt),
        VMvVX { rs1, .. } | VMvSX { rs1, .. } => x(rs1),
        VFMvVF { fs1, .. } => out.push(f_ready[fs1.index()]),
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::TEXT_BASE;
    use bvl_isa::asm::Assembler;
    use bvl_isa::reg::XReg;
    use bvl_mem::{HierConfig, SimMemory};

    fn x(i: u8) -> XReg {
        XReg::new(i)
    }

    fn run_core(a: &Assembler, mem: SimMemory) -> (LittleCore, u64, SharedMem) {
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(mem);
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut core = LittleCore::new(
            0,
            shared.clone(),
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            LittleParams::default(),
        );
        core.assign(0);
        for t in 0..2_000_000 {
            hier.tick(t);
            core.tick(t, &mut hier);
            if core.done() {
                return (core, t, shared);
            }
        }
        panic!("core did not finish");
    }

    #[test]
    fn straight_line_code_retires_all() {
        let mut a = Assembler::new();
        a.li(x(1), 1);
        a.li(x(2), 2);
        a.add(x(3), x(1), x(2));
        a.halt();
        let (core, cycles, _) = run_core(&a, SimMemory::new(1 << 20));
        assert_eq!(core.stats().retired, 4);
        assert_eq!(core.machine().xreg(x(3)), 3);
        assert!(cycles < 1000);
    }

    #[test]
    fn loop_executes_with_reasonable_ipc() {
        let mut a = Assembler::new();
        a.li(x(1), 0);
        a.li(x(2), 100);
        a.label("loop");
        a.addi(x(1), x(1), 1);
        a.bne(x(1), x(2), "loop");
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        assert_eq!(core.stats().retired, 203);
        // Tight ALU loop after warmup: IPC should be decent but < 1.
        assert!(core.stats().ipc() > 0.4, "ipc = {}", core.stats().ipc());
        assert!(core.stats().branches == 100);
        // Backward-taken predictor mispredicts only the exit.
        assert_eq!(core.stats().mispredicts, 1);
    }

    #[test]
    fn load_use_stall_is_raw_mem() {
        let mut a = Assembler::new();
        a.li(x(1), 0x2000);
        a.lw(x(2), x(1), 0); // cold miss -> long stall
        a.addi(x(3), x(2), 1); // load-use dependency
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        assert!(
            core.stats().of(StallKind::RawMem) > 50,
            "raw_mem = {}",
            core.stats().of(StallKind::RawMem)
        );
    }

    #[test]
    fn div_dependency_is_raw_llfu() {
        let mut a = Assembler::new();
        a.li(x(1), 100);
        a.li(x(2), 7);
        a.div(x(3), x(1), x(2));
        a.addi(x(4), x(3), 1);
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        assert!(core.stats().of(StallKind::RawLlfu) >= 10);
    }

    #[test]
    fn stores_reach_shared_memory() {
        let mut a = Assembler::new();
        a.li(x(1), 0x3000);
        a.li(x(2), 99);
        a.sw(x(2), x(1), 0);
        a.halt();
        let (_, _, shared) = run_core(&a, SimMemory::new(1 << 20));
        shared.with(|m| assert_eq!(bvl_isa::mem::Memory::read_uint(m, 0x3000, 4), 99));
    }

    #[test]
    fn back_to_back_memory_ops_respect_single_load() {
        let mut a = Assembler::new();
        a.li(x(1), 0x4000);
        for i in 0..8 {
            a.lw(x(2), x(1), i * 4);
        }
        a.halt();
        let (core, _, _) = run_core(&a, SimMemory::new(1 << 20));
        // 8 independent loads: structural single-load limit forces
        // serialization; struct stalls must appear.
        assert!(core.stats().of(StallKind::Struct) > 0);
    }

    #[test]
    fn assigning_twice_reuses_the_core() {
        let mut a = Assembler::new();
        a.label("task");
        a.addi(x(5), x(5), 1);
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(SimMemory::new(1 << 20));
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut core = LittleCore::new(
            0,
            shared,
            prog.clone(),
            TEXT_BASE,
            hier.line_bytes(),
            LittleParams::default(),
        );
        let mut t = 0;
        for _ in 0..3 {
            core.assign(prog.label("task").unwrap());
            while !core.done() {
                hier.tick(t);
                core.tick(t, &mut hier);
                t += 1;
                assert!(t < 100_000);
            }
        }
        assert_eq!(core.machine().xreg(x(5)), 3);
    }
}
