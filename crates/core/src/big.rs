//! The out-of-order big core.
//!
//! A simplified O3 model: wide fetch through a line buffer, functional
//! execute-at-dispatch, a reorder buffer with producer-seq renaming,
//! per-class functional-unit issue slots, a load/store queue with
//! line-granularity store→load ordering, and in-order commit.
//!
//! Vector instructions occupy a ROB slot and are dispatched to the
//! attached [`VectorEngine`] only once they reach the ROB head (paper
//! section III-A). Instructions that do not write a scalar register commit
//! immediately after dispatch; scalar-writing ones block commit until the
//! engine responds. `vmfence` blocks at the head until all older scalar
//! memory operations have retired *and* the engine reports its memory
//! pipeline drained (section III-B).

use crate::fetch::FetchUnit;
use crate::types::{CoreStats, Quiescence, StallKind, VecCmd, VectorEngine};
use bvl_isa::asm::Program;
use bvl_isa::exec::{ExecError, StepInfo};
use bvl_isa::instr::Instr;
use bvl_isa::meta::FuClass;
use bvl_isa::predecode::{DestReg, PreDecoded, SrcReg};
use bvl_isa::reg::NUM_REGS;
use bvl_isa::Machine;
use bvl_mem::{AccessKind, MemHierarchy, MemReq, PortId, SharedMem};
use bvl_snap::{snap_struct, Snap, SnapError, SnapReader, SnapWriter};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Big-core configuration (paper Table II class: 4-wide OoO).
#[derive(Clone, Copy, Debug)]
pub struct BigParams {
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: u32,
    /// Instructions issued to FUs per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Redirect penalty on mispredicted branches, cycles.
    pub branch_penalty: u64,
    /// Integer ALU issue slots per cycle.
    pub fu_alu: u32,
    /// Multiply/divide units (unpipelined).
    pub fu_muldiv: u32,
    /// FP issue slots per cycle (pipelined).
    pub fu_fpu: u32,
    /// Memory (L1D) issue slots per cycle.
    pub fu_mem: u32,
    /// Outstanding stores tolerated past commit.
    pub store_buffer: usize,
    /// Outstanding loads.
    pub load_queue: usize,
}

impl Default for BigParams {
    fn default() -> Self {
        BigParams {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 128,
            branch_penalty: 8,
            fu_alu: 3,
            fu_muldiv: 1,
            fu_fpu: 2,
            fu_mem: 2,
            store_buffer: 8,
            load_queue: 8,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EState {
    /// Waiting for sources / an FU.
    Waiting,
    /// Executing; result ready at the contained cycle.
    Executing(u64),
    /// Load in flight; completed by the memory response with this id.
    WaitMem(u64),
    /// Vector instruction not yet dispatched to the engine.
    WaitVector,
    /// Vector instruction dispatched; awaiting a scalar response.
    WaitVectorResult,
    /// `vmfence` waiting for drain conditions.
    WaitFence,
    /// Result ready; eligible to commit in order.
    Done,
}

/// Producer sequence numbers of a ROB entry's sources (renaming snapshot
/// taken at dispatch), stored inline — an instruction reads at most three
/// scalar registers, so dispatch stays allocation-free.
#[derive(Clone, Copy, Debug, Default)]
struct Deps {
    seqs: [u64; 3],
    n: u8,
}

impl Deps {
    fn push(&mut self, seq: u64) {
        self.seqs[self.n as usize] = seq;
        self.n += 1;
    }

    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seqs[..self.n as usize].iter().copied()
    }
}

#[derive(Debug)]
struct RobEntry {
    seq: u64,
    info: StepInfo,
    state: EState,
    /// Store issues its memory request at commit.
    is_store: bool,
    deps: Deps,
}

/// The out-of-order big core timing model.
pub struct BigCore {
    params: BigParams,
    machine: Machine<SharedMem>,
    program: Arc<Program>,
    pre: Arc<PreDecoded>,
    line_bytes: u64,
    fetch: FetchUnit,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    /// Latest in-flight producer of each register (`seq + 1`; 0 = none) —
    /// the rename map. Encoded as plain integers so the operand table in
    /// [`source_ready_times`] can be reused to collect dependencies.
    x_producer: [u64; NUM_REGS],
    f_producer: [u64; NUM_REGS],
    muldiv_busy_until: u64,
    outstanding_stores: HashSet<u64>,
    outstanding_loads: usize,
    next_mem_id: u64,
    stats: CoreStats,
    halted_fetch: bool,
    halted: bool,
    stall_dispatch_until: u64,
}

impl std::fmt::Debug for BigCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BigCore")
            .field("rob", &self.rob.len())
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

impl BigCore {
    /// Creates the big core executing `program`. `vlen_bits` must match
    /// the attached vector engine's hardware vector length (64 if none).
    pub fn new(
        mem: SharedMem,
        program: Arc<Program>,
        text_base: u64,
        line_bytes: u64,
        vlen_bits: u32,
        params: BigParams,
    ) -> Self {
        BigCore {
            params,
            machine: Machine::new(mem, vlen_bits),
            pre: program.predecoded(),
            line_bytes,
            program,
            fetch: FetchUnit::new(PortId::BigFetch, text_base, line_bytes),
            rob: VecDeque::new(),
            next_seq: 0,
            x_producer: [0; NUM_REGS],
            f_producer: [0; NUM_REGS],
            muldiv_busy_until: 0,
            outstanding_stores: HashSet::new(),
            outstanding_loads: 0,
            next_mem_id: 0,
            stats: CoreStats::default(),
            // Idle until assigned work (matches the little core).
            halted_fetch: true,
            halted: true,
            stall_dispatch_until: 0,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Fetch groups delivered (L1I reads; Figure 5's quantity).
    pub fn fetch_groups(&self) -> u64 {
        self.fetch.fetch_groups
    }

    /// The golden machine (argument setup / result inspection).
    pub fn machine_mut(&mut self) -> &mut Machine<SharedMem> {
        &mut self.machine
    }

    /// Borrow of the golden machine.
    pub fn machine(&self) -> &Machine<SharedMem> {
        &self.machine
    }

    /// Snapshot of the core's final architectural state for differential
    /// comparison. Only meaningful once [`BigCore::done`] — while the
    /// pipeline is in flight the golden machine runs *ahead* of
    /// architectural commit (execute-at-dispatch).
    pub fn arch_snapshot(&self) -> bvl_isa::exec::ArchSnapshot {
        self.machine.snapshot()
    }

    /// Starts execution at `pc`.
    pub fn assign(&mut self, pc: u32) {
        self.machine.set_pc(pc);
        self.halted = false;
        self.halted_fetch = false;
    }

    /// True when the program has halted and the pipeline drained (vector
    /// engine drain is the system's responsibility).
    pub fn done(&self) -> bool {
        self.halted && self.rob.is_empty() && self.outstanding_stores.is_empty()
    }

    /// Advances one cycle. `engine` is the attached vector engine, if any.
    ///
    /// # Panics
    ///
    /// Panics if the program escapes its bounds without halting, or if a
    /// vector instruction appears with no engine attached.
    pub fn tick(
        &mut self,
        now: u64,
        hier: &mut MemHierarchy,
        mut engine: Option<&mut dyn VectorEngine>,
    ) {
        self.drain_memory(now, hier);
        if let Some(e) = engine.as_deref_mut() {
            while let Some(seq) = e.pop_scalar_done() {
                if let Some(entry) = self.rob.iter_mut().find(|en| en.seq == seq) {
                    debug_assert_eq!(entry.state, EState::WaitVectorResult);
                    entry.state = EState::Done;
                }
            }
        }
        self.sweep_executing(now);
        let committed = self.commit(now, hier, engine.as_deref_mut());
        self.issue(now, hier);
        self.dispatch(now, hier, engine);

        if self.halted {
            return;
        }
        if committed > 0 {
            self.stats.account(StallKind::Busy);
        } else {
            let kind = match self.rob.front().map(|e| e.state) {
                Some(EState::WaitMem(_)) => StallKind::RawMem,
                Some(EState::WaitVector) | Some(EState::WaitVectorResult) => StallKind::Xelem,
                Some(EState::WaitFence) => StallKind::Misc,
                Some(_) => StallKind::Struct,
                None => StallKind::Misc,
            };
            self.stats.account(kind);
        }
    }

    fn drain_memory(&mut self, _now: u64, hier: &mut MemHierarchy) {
        self.fetch.drain_responses(hier);
        while let Some(resp) = hier.pop_response(PortId::BigData) {
            if resp.is_store {
                self.outstanding_stores.remove(&resp.id);
            } else {
                self.outstanding_loads = self.outstanding_loads.saturating_sub(1);
                if let Some(entry) = self
                    .rob
                    .iter_mut()
                    .find(|e| e.state == EState::WaitMem(resp.id))
                {
                    entry.state = EState::Done;
                }
            }
        }
    }

    fn sweep_executing(&mut self, now: u64) {
        for entry in &mut self.rob {
            if let EState::Executing(done) = entry.state {
                if done <= now {
                    entry.state = EState::Done;
                }
            }
        }
    }

    /// True once producer `seq` has its result available (committed, or in
    /// the ROB with state `Done`).
    fn dep_completed(&self, seq: u64) -> bool {
        match self.rob.front() {
            None => true,
            Some(front) if seq < front.seq => true, // already committed
            _ => {
                let base = self.rob.front().expect("non-empty").seq;
                let idx = (seq - base) as usize;
                debug_assert_eq!(self.rob[idx].seq, seq, "ROB seqs are contiguous");
                self.rob[idx].state == EState::Done
            }
        }
    }

    fn commit<E: VectorEngine + ?Sized>(
        &mut self,
        now: u64,
        hier: &mut MemHierarchy,
        mut engine: Option<&mut E>,
    ) -> u32 {
        let mut committed = 0;
        while committed < self.params.commit_width {
            let Some(head) = self.rob.front_mut() else {
                break;
            };
            match head.state {
                EState::WaitVector => {
                    let Some(e) = engine.as_deref_mut() else {
                        panic!("vector instruction with no vector engine attached");
                    };
                    if head.info.instr == Instr::VmFence {
                        head.state = EState::WaitFence;
                        continue;
                    }
                    if !e.can_accept() {
                        break;
                    }
                    let needs_resp = head.info.instr.vector_writes_scalar();
                    bvl_obs::trace::emit(now, "big", 0, "vec_dispatch", head.seq);
                    e.dispatch(VecCmd {
                        seq: head.seq,
                        instr: head.info.instr,
                        vl: head.info.vl,
                        sew: head.info.sew,
                        mem: head.info.mem.clone(),
                        needs_scalar_response: needs_resp,
                    });
                    if needs_resp {
                        head.state = EState::WaitVectorResult;
                        break;
                    }
                    head.state = EState::Done;
                    continue;
                }
                EState::WaitFence => {
                    let scalar_drained = self.outstanding_stores.is_empty();
                    let engine_drained = engine.as_deref().is_none_or(|e| e.mem_drained());
                    if scalar_drained && engine_drained {
                        self.rob.front_mut().expect("head exists").state = EState::Done;
                        continue;
                    }
                    break;
                }
                EState::Done => {
                    // Stores issue their memory request at commit.
                    if head.is_store {
                        if self.outstanding_stores.len() >= self.params.store_buffer {
                            break;
                        }
                        let acc = head.info.mem[0];
                        self.next_mem_id += 1;
                        let req = MemReq {
                            id: self.next_mem_id,
                            addr: acc.addr,
                            size: acc.size,
                            is_store: true,
                            kind: AccessKind::Data,
                            port: PortId::BigData,
                        };
                        if !hier.request(req) {
                            break;
                        }
                        self.outstanding_stores.insert(self.next_mem_id);
                    }
                    let entry = self.rob.pop_front().expect("head exists");
                    if entry.info.halted {
                        self.halted = true;
                        bvl_obs::trace::emit(now, "big", 0, "halt", entry.seq);
                    }
                    self.stats.retired += 1;
                    committed += 1;
                }
                _ => break,
            }
        }
        committed
    }

    fn issue(&mut self, now: u64, hier: &mut MemHierarchy) {
        let mut alu = self.params.fu_alu;
        let mut fpu = self.params.fu_fpu;
        let mut mem = self.params.fu_mem;
        let mut issued = 0;
        // Collect older-store lines once for store->load ordering.
        let line_mask = !(hier.line_bytes() - 1);
        for i in 0..self.rob.len() {
            if issued >= self.params.issue_width {
                break;
            }
            if self.rob[i].state != EState::Waiting {
                continue;
            }
            let im = *self.pre.at(self.rob[i].info.pc);
            if im.is_vector {
                // Vector instructions wait for the ROB head.
                continue;
            }
            // Sources ready? (All producer seqs completed.)
            let hazard = self.rob[i].deps.iter().any(|d| !self.dep_completed(d));
            if hazard {
                continue;
            }
            let meta = im.meta;
            match meta.fu {
                FuClass::Alu | FuClass::Branch | FuClass::None => {
                    if alu == 0 {
                        continue;
                    }
                    alu -= 1;
                    self.rob[i].state = EState::Executing(now + u64::from(meta.latency));
                }
                FuClass::MulDiv => {
                    if self.muldiv_busy_until > now {
                        continue;
                    }
                    self.muldiv_busy_until = now + u64::from(meta.latency);
                    self.rob[i].state = EState::Executing(now + u64::from(meta.latency));
                }
                FuClass::Fpu => {
                    if fpu == 0 {
                        continue;
                    }
                    fpu -= 1;
                    self.rob[i].state = EState::Executing(now + u64::from(meta.latency));
                }
                FuClass::Mem => {
                    if self.rob[i].is_store {
                        // Stores "execute" by having their sources ready;
                        // the request goes out at commit.
                        self.rob[i].state = EState::Done;
                        continue;
                    }
                    if mem == 0 || self.outstanding_loads >= self.params.load_queue {
                        continue;
                    }
                    let addr_line = self.rob[i].info.mem[0].addr & line_mask;
                    // Store->load ordering at line granularity.
                    let blocked = self.rob.iter().take(i).any(|e| {
                        e.is_store
                            && !e.info.mem.is_empty()
                            && e.info.mem[0].addr & line_mask == addr_line
                    });
                    if blocked {
                        continue;
                    }
                    let acc = self.rob[i].info.mem[0];
                    self.next_mem_id += 1;
                    let req = MemReq {
                        id: self.next_mem_id,
                        addr: acc.addr,
                        size: acc.size,
                        is_store: false,
                        kind: AccessKind::Data,
                        port: PortId::BigData,
                    };
                    if !hier.request(req) {
                        mem = 0; // port saturated this cycle
                        continue;
                    }
                    mem -= 1;
                    self.outstanding_loads += 1;
                    self.rob[i].state = EState::WaitMem(self.next_mem_id);
                }
                FuClass::Vector => unreachable!("vector handled above"),
            }
            issued += 1;
        }
    }

    fn dispatch<E: VectorEngine + ?Sized>(
        &mut self,
        now: u64,
        hier: &mut MemHierarchy,
        engine: Option<&mut E>,
    ) {
        if self.halted_fetch || now < self.stall_dispatch_until {
            return;
        }
        let _ = engine;
        for _ in 0..self.params.fetch_width {
            if self.rob.len() >= self.params.rob_size {
                break;
            }
            let pc = self.machine.pc();
            if !self.fetch.available(now, pc, hier) {
                break;
            }
            self.fetch.deliver();
            self.stats.fetch_groups += 1;
            let im = *self.pre.at(pc);
            let info = match self.machine.step(&self.program) {
                Ok(info) => info,
                Err(ExecError::PcOutOfRange(pc)) => {
                    panic!("big core escaped program at pc {pc}")
                }
                Err(e) => panic!("big core exec error: {e}"),
            };
            let is_store = !info.mem.is_empty() && info.mem[0].is_store && !info.instr.is_vector();
            let is_vector = info.instr.is_vector();
            let halted = info.halted;
            let mut redirect = false;
            if let Instr::Branch { target, .. } = info.instr {
                self.stats.branches += 1;
                let predicted_taken = target <= info.pc;
                let actually_taken = info.taken.is_some();
                if predicted_taken != actually_taken {
                    self.stats.mispredicts += 1;
                    self.fetch.redirect(now, self.params.branch_penalty);
                    self.stall_dispatch_until = now + self.params.branch_penalty;
                    redirect = true;
                }
            }
            // Rename: snapshot the producers of this entry's sources
            // *before* updating the map with its own destination, so an
            // instruction reading and writing the same register depends on
            // the older producer, not on itself.
            let mut deps = Deps::default();
            for &s in im.srcs() {
                let enc = match s {
                    SrcReg::X(r) => self.x_producer[r as usize],
                    SrcReg::F(r) => self.f_producer[r as usize],
                };
                if enc != 0 {
                    deps.push(enc - 1);
                }
            }
            match im.dest {
                DestReg::X(0) | DestReg::None => {}
                DestReg::X(r) => self.x_producer[r as usize] = self.next_seq + 1,
                DestReg::F(r) => self.f_producer[r as usize] = self.next_seq + 1,
            }
            let state = if is_vector {
                EState::WaitVector
            } else {
                EState::Waiting
            };
            self.rob.push_back(RobEntry {
                seq: self.next_seq,
                info,
                state,
                is_store,
                deps,
            });
            self.next_seq += 1;
            if halted {
                self.halted_fetch = true;
                break;
            }
            if redirect {
                break;
            }
        }
    }

    /// Reports whether ticking this core before some future cycle can do
    /// anything beyond repeating one constant stall accounting.
    ///
    /// `engine_*` describe the attached engine as observed this cycle
    /// (pass `can_accept = false`, `scalar_pending = false`,
    /// `mem_drained = true` when no engine is attached). Callers must
    /// additionally check the hierarchy for pending responses on the big
    /// fetch/data ports: a quiescent core is woken by them.
    pub fn quiescence(
        &self,
        now: u64,
        engine_can_accept: bool,
        engine_scalar_pending: bool,
        engine_mem_drained: bool,
    ) -> Quiescence {
        if self.halted {
            // Drained pipeline; any in-flight stores complete externally.
            return Quiescence::Idle {
                until: None,
                account: None,
            };
        }
        if engine_scalar_pending {
            return Quiescence::Active; // pop_scalar_done completes an entry
        }
        let mut until: Option<u64> = None;
        let fold = |until: &mut Option<u64>, ev: u64| {
            *until = Some(until.map_or(ev, |u| u.min(ev)));
        };

        // Commit side: the head alone decides whether anything retires.
        if let Some(head) = self.rob.front() {
            match head.state {
                EState::Done => return Quiescence::Active,
                EState::WaitVector => {
                    if head.info.instr == Instr::VmFence {
                        // Converts to WaitFence on the next tick.
                        return Quiescence::Active;
                    }
                    if engine_can_accept {
                        return Quiescence::Active;
                    }
                }
                EState::WaitFence if self.outstanding_stores.is_empty() && engine_mem_drained => {
                    return Quiescence::Active;
                }
                _ => {}
            }
        }

        // Issue side: Executing completions are exact internal deadlines;
        // a Waiting entry with complete deps may act this cycle.
        let line_mask = !(self.line_bytes - 1);
        for (i, e) in self.rob.iter().enumerate() {
            match e.state {
                EState::Executing(done) => {
                    if done <= now {
                        return Quiescence::Active;
                    }
                    fold(&mut until, done);
                }
                EState::Waiting => {
                    let im = self.pre.at(e.info.pc);
                    if im.is_vector {
                        continue; // dispatched from the head (commit side)
                    }
                    if e.deps.iter().any(|d| !self.dep_completed(d)) {
                        continue; // wakes on a producer's event, folded above
                    }
                    match im.meta.fu {
                        FuClass::MulDiv => {
                            if self.muldiv_busy_until <= now {
                                return Quiescence::Active;
                            }
                            fold(&mut until, self.muldiv_busy_until);
                        }
                        FuClass::Mem => {
                            if e.is_store {
                                return Quiescence::Active; // marks itself Done
                            }
                            if self.outstanding_loads >= self.params.load_queue {
                                continue; // frees on an external response
                            }
                            let addr_line = e.info.mem[0].addr & line_mask;
                            let blocked = self.rob.iter().take(i).any(|o| {
                                o.is_store
                                    && !o.info.mem.is_empty()
                                    && o.info.mem[0].addr & line_mask == addr_line
                            });
                            if blocked {
                                continue; // clears at commit (head-driven)
                            }
                            return Quiescence::Active; // would request the L1D
                        }
                        // ALU/branch/FP slots refresh every cycle.
                        _ => return Quiescence::Active,
                    }
                }
                _ => {}
            }
        }

        // Dispatch side.
        if !self.halted_fetch {
            if now < self.stall_dispatch_until {
                fold(&mut until, self.stall_dispatch_until);
            } else if self.rob.len() < self.params.rob_size {
                if self.fetch.has_line(self.machine.pc()) {
                    return Quiescence::Active; // would decode now
                }
                if !self.fetch.fetch_pending() {
                    return Quiescence::Active; // would issue the line fetch
                }
                // Else: waiting on the L1I response (external).
            }
            // A full ROB frees only at commit, which the head gates.
        }

        // A quiescent tick commits nothing and charges the head's state —
        // exactly the naive loop's `committed == 0` accounting.
        let account = Some(match self.rob.front().map(|e| e.state) {
            Some(EState::WaitMem(_)) => StallKind::RawMem,
            Some(EState::WaitVector) | Some(EState::WaitVectorResult) => StallKind::Xelem,
            Some(EState::WaitFence) => StallKind::Misc,
            Some(_) => StallKind::Struct,
            None => StallKind::Misc,
        });
        Quiescence::Idle { until, account }
    }

    /// Batch-accounts `cycles` skipped quiescent cycles. Callers must
    /// have observed an [`Quiescence::Idle`] with this `account` covering
    /// the whole window.
    pub fn skip_idle(&mut self, cycles: u64, account: Option<StallKind>) {
        if let Some(kind) = account {
            self.stats.account_many(kind, cycles);
        }
    }

    /// Appends the core's mutable state (machine, front-end, ROB, rename
    /// maps, LSQ tracking, stats) to a checkpoint. Configuration
    /// (`params`, program, ports) is not written — a restore target is
    /// built from the same [`BigCore::new`] arguments.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.machine.save_state(w);
        self.fetch.save_state(w);
        self.rob.save(w);
        self.next_seq.save(w);
        self.x_producer.save(w);
        self.f_producer.save(w);
        self.muldiv_busy_until.save(w);
        // HashSet iteration is nondeterministic: encode sorted so equal
        // states always produce identical bytes.
        let mut stores: Vec<u64> = self.outstanding_stores.iter().copied().collect();
        stores.sort_unstable();
        stores.save(w);
        self.outstanding_loads.save(w);
        self.next_mem_id.save(w);
        self.stats.save(w);
        self.halted_fetch.save(w);
        self.halted.save(w);
        self.stall_dispatch_until.save(w);
    }

    /// Restores state written by [`BigCore::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input or a ROB larger than
    /// this core's configuration allows.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.machine.restore_state(r)?;
        self.fetch.restore_state(r)?;
        let rob: VecDeque<RobEntry> = Snap::load(r)?;
        if rob.len() > self.params.rob_size {
            return Err(SnapError::Corrupt {
                what: format!(
                    "checkpoint ROB holds {} entries, core has {}",
                    rob.len(),
                    self.params.rob_size
                ),
            });
        }
        self.rob = rob;
        self.next_seq = Snap::load(r)?;
        self.x_producer = Snap::load(r)?;
        self.f_producer = Snap::load(r)?;
        self.muldiv_busy_until = Snap::load(r)?;
        let stores: Vec<u64> = Snap::load(r)?;
        self.outstanding_stores = stores.into_iter().collect();
        self.outstanding_loads = Snap::load(r)?;
        self.next_mem_id = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        self.halted_fetch = Snap::load(r)?;
        self.halted = Snap::load(r)?;
        self.stall_dispatch_until = Snap::load(r)?;
        Ok(())
    }
}

impl Snap for EState {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            EState::Waiting => w.u8(0),
            EState::Executing(at) => {
                w.u8(1);
                at.save(w);
            }
            EState::WaitMem(id) => {
                w.u8(2);
                id.save(w);
            }
            EState::WaitVector => w.u8(3),
            EState::WaitVectorResult => w.u8(4),
            EState::WaitFence => w.u8(5),
            EState::Done => w.u8(6),
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => EState::Waiting,
            1 => EState::Executing(Snap::load(r)?),
            2 => EState::WaitMem(Snap::load(r)?),
            3 => EState::WaitVector,
            4 => EState::WaitVectorResult,
            5 => EState::WaitFence,
            6 => EState::Done,
            t => {
                return Err(SnapError::BadTag {
                    ty: "EState",
                    tag: u64::from(t),
                })
            }
        })
    }
}

snap_struct!(Deps { seqs, n });
snap_struct!(RobEntry {
    seq,
    info,
    state,
    is_store,
    deps,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::TEXT_BASE;
    use bvl_isa::asm::Assembler;
    use bvl_isa::reg::XReg;
    use bvl_mem::{HierConfig, SimMemory};

    fn x(i: u8) -> XReg {
        XReg::new(i)
    }

    fn run_big(a: &Assembler) -> (BigCore, u64) {
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(SimMemory::new(1 << 20));
        let mut hier = MemHierarchy::new(HierConfig::with_little(0));
        let mut core = BigCore::new(
            shared,
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            64,
            BigParams::default(),
        );
        core.assign(0);
        for t in 0..2_000_000 {
            hier.tick(t);
            core.tick(t, &mut hier, None);
            if core.done() {
                return (core, t);
            }
        }
        panic!("big core did not finish");
    }

    #[test]
    fn independent_alu_ops_exploit_width() {
        let mut a = Assembler::new();
        for i in 1..=9 {
            a.li(x(i), i as i64);
        }
        // 12 independent adds.
        for _ in 0..4 {
            a.add(x(10), x(1), x(2));
            a.add(x(11), x(3), x(4));
            a.add(x(12), x(5), x(6));
        }
        a.halt();
        let (core, _) = run_big(&a);
        assert_eq!(core.stats().retired, 22);
        // Straight-line cold code is fetch-bound (every line misses to
        // DRAM); just sanity-check forward progress here. Warm-loop IPC is
        // asserted in `warm_loop_ipc_exceeds_one`.
        assert!(core.stats().ipc() > 0.05);
    }

    #[test]
    fn warm_loop_ipc_exceeds_one() {
        // A loop body of independent ALU ops that fits in one I-line: after
        // the first iteration everything is warm and superscalar issue
        // should push IPC above 1.
        let mut a = Assembler::new();
        a.li(x(1), 0);
        a.li(x(2), 200);
        a.label("loop");
        a.add(x(3), x(4), x(5));
        a.add(x(6), x(7), x(8));
        a.add(x(9), x(10), x(11));
        a.add(x(12), x(13), x(14));
        a.add(x(15), x(16), x(17));
        a.add(x(18), x(19), x(20));
        a.addi(x(1), x(1), 1);
        a.bne(x(1), x(2), "loop");
        a.halt();
        let (core, _) = run_big(&a);
        assert!(
            core.stats().ipc() > 1.0,
            "warm loop ipc = {}",
            core.stats().ipc()
        );
    }

    #[test]
    fn big_core_beats_little_on_ilp() {
        // Same independent-op program on both cores: big must finish in
        // fewer cycles thanks to superscalar issue.
        let mut a = Assembler::new();
        for i in 1..=6 {
            a.li(x(i), i as i64);
        }
        for _ in 0..32 {
            a.add(x(10), x(1), x(2));
            a.add(x(11), x(3), x(4));
            a.add(x(12), x(5), x(6));
        }
        a.halt();
        let (big, big_cycles) = run_big(&a);

        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(SimMemory::new(1 << 20));
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut little = crate::little::LittleCore::new(
            0,
            shared,
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            crate::little::LittleParams::default(),
        );
        little.assign(0);
        let mut little_cycles = 0;
        for t in 0..2_000_000 {
            hier.tick(t);
            little.tick(t, &mut hier);
            if little.done() {
                little_cycles = t;
                break;
            }
        }
        assert!(little_cycles > 0);
        assert!(
            big_cycles < little_cycles,
            "big {big_cycles} !< little {little_cycles}"
        );
        assert_eq!(big.stats().retired, little.stats().retired);
    }

    #[test]
    fn loads_and_stores_commit_in_order() {
        let mut a = Assembler::new();
        a.li(x(1), 0x2000);
        a.li(x(2), 5);
        a.sw(x(2), x(1), 0);
        a.lw(x(3), x(1), 0); // must see the store's value
        a.addi(x(4), x(3), 1);
        a.halt();
        let (core, _) = run_big(&a);
        assert_eq!(core.machine().xreg(x(4)), 6);
    }

    #[test]
    fn loop_with_mispredicts() {
        let mut a = Assembler::new();
        a.li(x(1), 0);
        a.li(x(2), 50);
        a.label("loop");
        a.addi(x(1), x(1), 1);
        a.bne(x(1), x(2), "loop");
        a.halt();
        let (core, _) = run_big(&a);
        assert_eq!(core.machine().xreg(x(1)), 50);
        assert_eq!(core.stats().branches, 50);
        assert_eq!(core.stats().mispredicts, 1); // exit only
    }

    #[test]
    fn quiescence_predicts_naive_ticks() {
        // Oracle for the event-skip contract (see LittleCore's twin test):
        // a claimed-quiescent tick with no external input due must retire
        // nothing and account exactly the predicted stall kind.
        let mut a = Assembler::new();
        a.li(x(1), 0x2000);
        a.lw(x(2), x(1), 0); // cold miss at the ROB head
        a.addi(x(3), x(2), 1);
        a.li(x(4), 900);
        a.li(x(5), 11);
        a.div(x(6), x(4), x(5));
        a.div(x(7), x(6), x(5)); // serialized divides: muldiv windows
        a.sw(x(7), x(1), 8);
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(SimMemory::new(1 << 20));
        let mut hier = MemHierarchy::new(HierConfig::with_little(0));
        let mut core = BigCore::new(
            shared,
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            64,
            BigParams::default(),
        );
        core.assign(0);
        let mut checked = 0u64;
        for t in 0..2_000_000u64 {
            let q = core.quiescence(t, false, false, true);
            let external = hier.next_event(t).is_some_and(|e| e <= t)
                || hier.response_pending(PortId::BigFetch)
                || hier.response_pending(PortId::BigData);
            hier.tick(t);
            let before = *core.stats();
            core.tick(t, &mut hier, None);
            if !external {
                if let Quiescence::Idle { until, account } = q {
                    if until.is_none_or(|u| t < u) {
                        checked += 1;
                        let mut expect = before;
                        if let Some(kind) = account {
                            expect.account(kind);
                        }
                        assert_eq!(*core.stats(), expect, "t={t} q={q:?}");
                    }
                }
            }
            if core.done() {
                assert!(checked > 50, "quiescent windows exercised: {checked}");
                return;
            }
        }
        panic!("core did not finish");
    }

    #[test]
    fn rob_drains_on_done() {
        let mut a = Assembler::new();
        a.li(x(1), 0x3000);
        a.li(x(2), 42);
        a.sw(x(2), x(1), 0);
        a.halt();
        let (core, _) = run_big(&a);
        assert!(core.done());
        assert_eq!(core.stats().retired, 4);
    }
}

#[cfg(test)]
mod engine_protocol_tests {
    use super::*;
    use crate::fetch::TEXT_BASE;
    use bvl_isa::asm::Assembler;
    use bvl_isa::reg::{VReg, XReg};
    use bvl_isa::vcfg::Sew;
    use bvl_mem::{HierConfig, SimMemory};
    use std::collections::VecDeque;

    /// A controllable fake engine for protocol tests.
    struct MockEngine {
        accepted: Vec<VecCmd>,
        scalar_done: VecDeque<u64>,
        drained: bool,
    }

    impl MockEngine {
        fn new() -> Self {
            MockEngine {
                accepted: Vec::new(),
                scalar_done: VecDeque::new(),
                drained: false,
            }
        }
    }

    impl VectorEngine for MockEngine {
        fn can_accept(&self) -> bool {
            true
        }
        fn dispatch(&mut self, cmd: VecCmd) {
            self.accepted.push(cmd);
        }
        fn pop_scalar_done(&mut self) -> Option<u64> {
            self.scalar_done.pop_front()
        }
        fn mem_drained(&self) -> bool {
            self.drained
        }
        fn idle(&self) -> bool {
            true
        }
        fn tick(&mut self, _now: u64, _hier: &mut MemHierarchy) {}
        fn vlen_bits(&self) -> u32 {
            512
        }
    }

    fn setup(a: &Assembler) -> (BigCore, MemHierarchy) {
        let prog = Arc::new(a.assemble().unwrap());
        let shared = SharedMem::new(SimMemory::new(1 << 20));
        let hier = MemHierarchy::new(HierConfig::with_little(0));
        let mut core = BigCore::new(
            shared,
            prog,
            TEXT_BASE,
            hier.line_bytes(),
            512,
            BigParams::default(),
        );
        core.assign(0);
        (core, hier)
    }

    /// `vmfence` must hold the ROB head until the engine reports its
    /// memory pipeline drained (paper section III-B).
    #[test]
    fn vmfence_waits_for_engine_drain() {
        let mut a = Assembler::new();
        a.vsetivli(XReg::new(1), 8, Sew::E32);
        a.li(XReg::new(2), 0x4000);
        a.vse(VReg::new(1), XReg::new(2));
        a.vmfence();
        a.halt();
        let (mut core, mut hier) = setup(&a);
        let mut engine = MockEngine::new();
        for t in 0..500u64 {
            hier.tick(t);
            core.tick(t, &mut hier, Some(&mut engine));
        }
        assert_eq!(engine.accepted.len(), 1, "store dispatched");
        assert!(!core.done(), "fence must block while engine is wet");
        engine.drained = true;
        for t in 500..1000u64 {
            hier.tick(t);
            core.tick(t, &mut hier, Some(&mut engine));
            if core.done() {
                return;
            }
        }
        panic!("core did not finish after drain");
    }

    /// A scalar-writing vector instruction blocks commit until the engine
    /// responds with its sequence number (paper section III-A).
    #[test]
    fn scalar_writing_vector_blocks_until_response() {
        let mut a = Assembler::new();
        a.vsetivli(XReg::new(1), 8, Sew::E32);
        a.vpopc(XReg::new(3), VReg::MASK);
        a.addi(XReg::new(4), XReg::new(3), 1); // depends on the result
        a.halt();
        let (mut core, mut hier) = setup(&a);
        let mut engine = MockEngine::new();
        let mut popc_seq = None;
        for t in 0..500u64 {
            hier.tick(t);
            core.tick(t, &mut hier, Some(&mut engine));
            if popc_seq.is_none() {
                popc_seq = engine
                    .accepted
                    .iter()
                    .find(|c| c.needs_scalar_response)
                    .map(|c| c.seq);
            }
        }
        let seq = popc_seq.expect("vpopc dispatched");
        assert!(!core.done(), "vpopc must block at the ROB head");
        engine.scalar_done.push_back(seq);
        for t in 500..1000u64 {
            hier.tick(t);
            core.tick(t, &mut hier, Some(&mut engine));
            if core.done() {
                return;
            }
        }
        panic!("core did not finish after scalar response");
    }

    /// Non-scalar-writing vector instructions commit at dispatch: the big
    /// core finishes without any engine response.
    #[test]
    fn plain_vector_instrs_commit_at_dispatch() {
        let mut a = Assembler::new();
        a.vsetivli(XReg::new(1), 8, Sew::E32);
        a.vid(VReg::new(1));
        a.vadd_vv(VReg::new(2), VReg::new(1), VReg::new(1));
        a.halt();
        let (mut core, mut hier) = setup(&a);
        let mut engine = MockEngine::new();
        for t in 0..500u64 {
            hier.tick(t);
            core.tick(t, &mut hier, Some(&mut engine));
            if core.done() {
                assert_eq!(engine.accepted.len(), 2);
                return;
            }
        }
        panic!("core never finished");
    }
}
