#![warn(missing_docs)]
//! # bvl-core — core timing models
//!
//! Two processor models drive every system in the paper:
//!
//! * [`little`] — a single-issue in-order core with a register scoreboard,
//!   one outstanding load, a small store buffer, and a static
//!   backward-taken branch predictor. It models the paper's in-house
//!   little core (RV64-class, Table II) and collects the per-category
//!   stall statistics used throughout the evaluation.
//! * [`big`] — a simplified out-of-order core: wide fetch, register
//!   renaming via producer tracking, a reorder buffer, a functional-unit
//!   pool, a load/store queue, and in-order commit. Vector instructions
//!   wait at the ROB head and are dispatched to a [`VectorEngine`]
//!   (paper section III-A).
//!
//! Both cores use the *execute-at-decode* oracle style: the golden
//! [`bvl_isa::Machine`] functionally executes each instruction as it
//! enters the pipeline, and the timing model replays its effects
//! (effective addresses, branch outcomes, vector lengths). Timing can
//! therefore never corrupt architectural state.

pub mod big;
pub mod fetch;
pub mod little;
pub mod types;

pub use big::{BigCore, BigParams};
pub use fetch::FetchUnit;
pub use little::{LittleCore, LittleParams};
pub use types::{CoreStats, StallKind, VecCmd, VectorEngine};
