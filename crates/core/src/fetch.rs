//! The front-end fetch model shared by both core types.
//!
//! A core's front-end holds one fetched line in its fetch buffer. Fetch
//! groups that hit the buffer are delivered immediately (and counted — the
//! L1I is read every fetch group, which is the quantity behind Figure 5);
//! crossing a line boundary or taking a redirect issues a line-granular
//! request to the L1I through the hierarchy.

use bvl_mem::{AccessKind, MemHierarchy, MemReq, PortId};
use bvl_snap::{Snap, SnapError, SnapReader, SnapWriter};

/// Program text is laid out from this synthetic address upward; it never
/// overlaps workload data (which the allocator places low).
pub const TEXT_BASE: u64 = 0x1000_0000;

/// The fetch unit of one core.
#[derive(Clone, Debug)]
pub struct FetchUnit {
    port: PortId,
    text_base: u64,
    line_bytes: u64,
    buffered_line: Option<u64>,
    pending_line: Option<u64>,
    redirect_free_at: u64,
    next_id: u64,
    /// Fetch groups delivered (one L1I read each).
    pub fetch_groups: u64,
}

impl FetchUnit {
    /// Creates a fetch unit fetching through `port` with instruction text
    /// based at `text_base`.
    pub fn new(port: PortId, text_base: u64, line_bytes: u64) -> Self {
        FetchUnit {
            port,
            text_base,
            line_bytes,
            buffered_line: None,
            pending_line: None,
            redirect_free_at: 0,
            next_id: 0,
            fetch_groups: 0,
        }
    }

    /// Byte address of instruction index `pc`.
    pub fn addr_of(&self, pc: u32) -> u64 {
        self.text_base + u64::from(pc) * 4
    }

    fn line_of(&self, pc: u32) -> u64 {
        self.addr_of(pc) & !(self.line_bytes - 1)
    }

    /// Applies a control-flow redirect: the front-end is unavailable until
    /// `now + penalty`.
    pub fn redirect(&mut self, now: u64, penalty: u64) {
        self.redirect_free_at = self.redirect_free_at.max(now + penalty);
    }

    /// Drains fetch responses from the hierarchy. Call once per cycle.
    pub fn drain_responses(&mut self, hier: &mut MemHierarchy) {
        while let Some(resp) = hier.pop_response(self.port) {
            debug_assert_eq!(Some(resp.addr), self.pending_line);
            self.buffered_line = Some(resp.addr);
            self.pending_line = None;
        }
    }

    /// Ensures the instruction at `pc` is fetchable this cycle, issuing an
    /// L1I request if needed. Returns `true` when the instruction can be
    /// delivered (caller then calls [`FetchUnit::deliver`]).
    pub fn available(&mut self, now: u64, pc: u32, hier: &mut MemHierarchy) -> bool {
        if now < self.redirect_free_at {
            return false;
        }
        let line = self.line_of(pc);
        if self.buffered_line == Some(line) {
            return true;
        }
        if self.pending_line.is_none() {
            self.next_id += 1;
            let req = MemReq {
                id: self.next_id,
                addr: line,
                size: self.line_bytes,
                is_store: false,
                kind: AccessKind::IFetch,
                port: self.port,
            };
            if hier.request(req) {
                self.pending_line = Some(line);
            }
        }
        false
    }

    /// Counts delivery of one fetch group (an L1I read).
    pub fn deliver(&mut self) {
        self.fetch_groups += 1;
    }

    /// True while a line fetch is outstanding.
    pub fn fetch_pending(&self) -> bool {
        self.pending_line.is_some()
    }

    /// The cycle the front-end becomes usable again after a redirect
    /// (`now < redirect_free_at` means fetch is blocked this cycle).
    pub fn redirect_free_at(&self) -> u64 {
        self.redirect_free_at
    }

    /// True when the line containing `pc` is already buffered — a fetch
    /// at `pc` would deliver without touching the hierarchy.
    pub fn has_line(&self, pc: u32) -> bool {
        self.buffered_line == Some(self.line_of(pc))
    }

    /// Forgets the buffered line (used when a core is reassigned to a new
    /// program/task far away).
    pub fn flush(&mut self) {
        self.buffered_line = None;
    }

    /// Appends the mutable state (not port/base/line configuration) to a
    /// checkpoint.
    pub fn save_state(&self, w: &mut SnapWriter) {
        self.buffered_line.save(w);
        self.pending_line.save(w);
        self.redirect_free_at.save(w);
        self.next_id.save(w);
        self.fetch_groups.save(w);
    }

    /// Restores state written by [`FetchUnit::save_state`].
    ///
    /// # Errors
    ///
    /// Fails with a [`SnapError`] on malformed input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.buffered_line = Snap::load(r)?;
        self.pending_line = Snap::load(r)?;
        self.redirect_free_at = Snap::load(r)?;
        self.next_id = Snap::load(r)?;
        self.fetch_groups = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_mem::HierConfig;

    #[test]
    fn fetch_miss_then_buffered() {
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut f = FetchUnit::new(PortId::LittleFetch(0), TEXT_BASE, 64);
        hier.tick(0);
        assert!(!f.available(0, 0, &mut hier)); // issues the line request
        assert!(f.fetch_pending());
        let mut ready_at = None;
        for t in 1..500 {
            hier.tick(t);
            f.drain_responses(&mut hier);
            if f.available(t, 0, &mut hier) {
                ready_at = Some(t);
                break;
            }
        }
        let t = ready_at.expect("fetch completed");
        // Same line: instruction 5 is available without further requests.
        assert!(f.available(t, 5, &mut hier));
        // Different line (64 B = 16 instructions): new request.
        assert!(!f.available(t, 16, &mut hier));
        assert!(f.fetch_pending());
    }

    #[test]
    fn redirect_blocks_fetch() {
        let mut hier = MemHierarchy::new(HierConfig::with_little(1));
        let mut f = FetchUnit::new(PortId::LittleFetch(0), TEXT_BASE, 64);
        hier.tick(0);
        f.available(0, 0, &mut hier);
        for t in 1..500 {
            hier.tick(t);
            f.drain_responses(&mut hier);
            if f.available(t, 0, &mut hier) {
                f.redirect(t, 3);
                assert!(!f.available(t, 0, &mut hier));
                assert!(!f.available(t + 2, 0, &mut hier));
                assert!(f.available(t + 3, 0, &mut hier));
                return;
            }
        }
        panic!("fetch never completed");
    }

    #[test]
    fn fetch_group_counter() {
        let mut f = FetchUnit::new(PortId::BigFetch, TEXT_BASE, 64);
        f.deliver();
        f.deliver();
        assert_eq!(f.fetch_groups, 2);
    }
}
