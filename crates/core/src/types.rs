//! Shared core-facing types: statistics, stall taxonomy and the vector
//! engine interface.

use bvl_isa::exec::MemAccess;
use bvl_isa::instr::Instr;
use bvl_isa::vcfg::Sew;
use bvl_mem::MemHierarchy;
use bvl_snap::snap_struct;

/// Why a core could not retire useful work in a given cycle.
///
/// The categories mirror Figure 7 of the paper (vector-mode little cores);
/// scalar execution uses the same taxonomy so breakdowns are comparable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StallKind {
    /// Issued (or retired) useful work — not a stall.
    Busy,
    /// Waiting for lock-step micro-op issue from the VCU (vector mode).
    Simd,
    /// Read-after-write on an outstanding memory value.
    RawMem,
    /// Read-after-write on a long-latency functional unit.
    RawLlfu,
    /// Structural hazard (FU or port busy, queue full).
    Struct,
    /// Waiting on a cross-element (VXU) operation.
    Xelem,
    /// Front-end starvation, fences, and everything else.
    Misc,
}

impl StallKind {
    /// All categories, in the order used by the Figure 7 breakdown.
    pub const ALL: [StallKind; 7] = [
        StallKind::Busy,
        StallKind::Simd,
        StallKind::RawMem,
        StallKind::RawLlfu,
        StallKind::Struct,
        StallKind::Xelem,
        StallKind::Misc,
    ];

    /// Short label matching the paper's legend.
    pub const fn label(self) -> &'static str {
        match self {
            StallKind::Busy => "busy",
            StallKind::Simd => "simd",
            StallKind::RawMem => "raw_mem",
            StallKind::RawLlfu => "raw_llfu",
            StallKind::Struct => "struct",
            StallKind::Xelem => "xelem",
            StallKind::Misc => "misc",
        }
    }
}

/// Per-core statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles the core was powered in its current role.
    pub cycles: u64,
    /// Instructions (or micro-ops) retired.
    pub retired: u64,
    /// Instruction fetch groups read from the L1I (Figure 5's quantity).
    pub fetch_groups: u64,
    /// Cycle breakdown, indexed by [`StallKind::ALL`] order.
    pub breakdown: [u64; 7],
    /// Conditional branches executed / mispredicted.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl CoreStats {
    /// Records one cycle attributed to `kind`.
    pub fn account(&mut self, kind: StallKind) {
        self.account_many(kind, 1);
    }

    /// Records `n` cycles attributed to `kind` at once — the batch form
    /// of [`CoreStats::account`] used when the simulator skips a window
    /// of quiescent cycles whose accounting is known to be constant.
    pub fn account_many(&mut self, kind: StallKind, n: u64) {
        self.cycles += n;
        let idx = StallKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in ALL");
        self.breakdown[idx] += n;
    }

    /// Cycles attributed to `kind`.
    pub fn of(&self, kind: StallKind) -> u64 {
        let idx = StallKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in ALL");
        self.breakdown[idx]
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Registers every counter under `scope` (e.g. `sys.little3`). The
    /// breakdown lands under `breakdown.{label}` in [`StallKind::ALL`]
    /// order, satisfying the `breakdown` conservation law:
    /// `Σ breakdown.* == cycles`.
    pub fn register(&self, scope: &mut bvl_obs::Scope<'_>) {
        scope.set("cycles", self.cycles);
        scope.set("retired", self.retired);
        scope.set("fetch_groups", self.fetch_groups);
        let mut bd = scope.scope("breakdown");
        for (kind, n) in StallKind::ALL.iter().zip(self.breakdown) {
            bd.set(kind.label(), n);
        }
        scope.set("branches", self.branches);
        scope.set("mispredicts", self.mispredicts);
    }
}

/// A ticked component's self-assessment of upcoming work, used by the
/// simulator's quiescence-skip engine (see DESIGN.md, "The event-skip
/// contract").
///
/// The contract: while a component reports `Idle`, every naive tick
/// strictly before `until` (every tick, when `until` is `None`) is a
/// no-op except for accounting exactly one cycle of `account` — provided
/// no memory response is pending on the component's ports and no other
/// component acts on it in the window. The first cycle at which its
/// behavior may differ must be covered by `until`; reporting an earlier
/// `until` is allowed (it only shrinks the skip), a later one is a bug.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quiescence {
    /// Ticking now may change state: do not skip.
    Active,
    /// Quiescent until `until` (exclusive). `None` means quiescent until
    /// externally woken (a memory response, an engine event, or a new
    /// work assignment).
    Idle {
        /// First cycle the component may act on its own, if any.
        until: Option<u64>,
        /// The per-cycle stall accounting each skipped tick would have
        /// performed (`None`: the tick accounts nothing, e.g. a halted
        /// core).
        account: Option<StallKind>,
    },
}

/// A vector instruction handed from the big core to a vector engine, with
/// the functional effects the timing model needs.
#[derive(Clone, Debug)]
pub struct VecCmd {
    /// The big core's sequence number for the instruction (echoed back on
    /// completion of scalar-writing instructions).
    pub seq: u64,
    /// The vector instruction.
    pub instr: Instr,
    /// Vector length in effect.
    pub vl: u32,
    /// Element width in effect.
    pub sew: Sew,
    /// Per-element memory accesses performed (for vector loads/stores).
    pub mem: Vec<MemAccess>,
    /// True if the big core blocks at the ROB head until the engine
    /// responds with a scalar value (paper section III-A).
    pub needs_scalar_response: bool,
}

snap_struct!(CoreStats {
    cycles,
    retired,
    fetch_groups,
    breakdown,
    branches,
    mispredicts,
});

snap_struct!(VecCmd {
    seq,
    instr,
    vl,
    sew,
    mem,
    needs_scalar_response,
});

/// The interface every vector engine implements: the VLITTLE cluster, the
/// integrated vector unit and the decoupled vector engine.
///
/// The big core dispatches one vector instruction at a time from its ROB
/// head; instructions that do not write a scalar register are considered
/// committed at dispatch, while scalar-writing instructions complete when
/// the engine reports their sequence number via
/// [`VectorEngine::pop_scalar_done`].
pub trait VectorEngine {
    /// True if the engine can accept a new command this cycle.
    fn can_accept(&self) -> bool;

    /// Accepts a command.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called while [`VectorEngine::can_accept`]
    /// is false.
    fn dispatch(&mut self, cmd: VecCmd);

    /// Pops the sequence number of a completed scalar-writing instruction.
    fn pop_scalar_done(&mut self) -> Option<u64>;

    /// True when every dispatched vector *memory* operation has retired —
    /// the condition `vmfence` waits on (paper section III-B).
    fn mem_drained(&self) -> bool;

    /// True when the engine holds no work at all.
    fn idle(&self) -> bool;

    /// Advances the engine one cycle, exchanging traffic with the memory
    /// hierarchy.
    fn tick(&mut self, now: u64, hier: &mut MemHierarchy);

    /// Hardware vector length in bits (what `vsetvl` grants against).
    fn vlen_bits(&self) -> u32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accounting() {
        let mut s = CoreStats::default();
        s.account(StallKind::Busy);
        s.account(StallKind::RawMem);
        s.account(StallKind::RawMem);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.of(StallKind::RawMem), 2);
        assert_eq!(s.of(StallKind::Busy), 1);
        assert_eq!(s.of(StallKind::Xelem), 0);
    }

    #[test]
    fn labels_match_paper_legend() {
        let labels: Vec<&str> = StallKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["busy", "simd", "raw_mem", "raw_llfu", "struct", "xelem", "misc"]
        );
    }

    #[test]
    fn ipc() {
        let s = CoreStats {
            retired: 50,
            cycles: 100,
            ..Default::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
    }
}
