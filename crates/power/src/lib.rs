#![warn(missing_docs)]
//! # bvl-power — DVFS power model and Pareto analysis
//!
//! Implements the paper's Section VII methodology: per-cluster average
//! power at each voltage/frequency level (Table VII, measured on an Odroid
//! XU+E by prior work), a Tarantula-derived 1.4× ratio for the decoupled
//! vector engine, system power composition, energy, and Pareto-frontier
//! extraction for Figures 10 and 11.
//!
//! The paper reproduces Table VII from its reference \[67\]; the archival text of the
//! table is partially illegible, so the level values here are
//! reconstructed to match the legible anchors (big core: 0.591 W at
//! 1.0 GHz, 0.841 W at 1.2 GHz, 1.205 W at 1.4 GHz) with the same
//! super-linear growth for the remaining entries. Figures 9–11 depend
//! only on the *relative* shape of these curves.

use serde::Serialize;

/// One voltage/frequency operating point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct VfLevel {
    /// Level name as in Table VII (`b0`..`b3`, `l0`..`l3`).
    pub name: &'static str,
    /// Clock frequency in GHz.
    pub ghz: f64,
    /// Average power of one core at this level, watts.
    pub watts: f64,
}

/// Big-core levels `b0..b3` (Table VII).
pub const BIG_LEVELS: [VfLevel; 4] = [
    VfLevel {
        name: "b0",
        ghz: 0.8,
        watts: 0.458,
    },
    VfLevel {
        name: "b1",
        ghz: 1.0,
        watts: 0.591,
    },
    VfLevel {
        name: "b2",
        ghz: 1.2,
        watts: 0.841,
    },
    VfLevel {
        name: "b3",
        ghz: 1.4,
        watts: 1.205,
    },
];

/// Little-core levels `l0..l3` (Table VII).
pub const LITTLE_LEVELS: [VfLevel; 4] = [
    VfLevel {
        name: "l0",
        ghz: 0.6,
        watts: 0.062,
    },
    VfLevel {
        name: "l1",
        ghz: 0.8,
        watts: 0.088,
    },
    VfLevel {
        name: "l2",
        ghz: 1.0,
        watts: 0.130,
    },
    VfLevel {
        name: "l3",
        ghz: 1.2,
        watts: 0.192,
    },
];

/// Tarantula's decoupled vector engine drew ~40% more power than its
/// out-of-order core (paper Section VII-A).
pub const DVE_POWER_RATIO: f64 = 1.4;

/// Power composition of one system (which clusters burn power).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemPower {
    /// One little core.
    OneLittle,
    /// One big core (with or without the integrated unit — the paper
    /// treats the IVU as power-neutral relative to the big core).
    OneBig,
    /// Big + decoupled vector engine at the big core's level.
    BigPlusDve,
    /// Big + `n` little cores (also `1bIV-4L` and `1b-4VL`: the paper
    /// assumes these match `1b-4L`).
    BigPlusLittles(u32),
}

impl SystemPower {
    /// Average system power at the given cluster levels, watts.
    pub fn watts(self, big: VfLevel, little: VfLevel) -> f64 {
        match self {
            SystemPower::OneLittle => little.watts,
            SystemPower::OneBig => big.watts,
            SystemPower::BigPlusDve => big.watts * (1.0 + DVE_POWER_RATIO),
            SystemPower::BigPlusLittles(n) => big.watts + f64::from(n) * little.watts,
        }
    }
}

/// A performance/power sample (one V/F combination of one system).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct PerfPowerPoint {
    /// Label, e.g. `"1b-4VL (b1,l3)"`.
    pub label: String,
    /// Execution time (lower is better), any consistent unit.
    pub time: f64,
    /// Average power in watts.
    pub power: f64,
}

impl PerfPowerPoint {
    /// Energy = power × time.
    pub fn energy(&self) -> f64 {
        self.time * self.power
    }

    /// True if `other` is at least as good on both axes and better on one.
    pub fn dominated_by(&self, other: &PerfPowerPoint) -> bool {
        other.time <= self.time
            && other.power <= self.power
            && (other.time < self.time || other.power < self.power)
    }
}

/// Extracts the Pareto-optimal subset (minimal time and power), sorted by
/// time ascending — the dotted frontier curves of Figures 10 and 11.
///
/// ```
/// use bvl_power::{pareto_frontier, PerfPowerPoint};
///
/// let points = vec![
///     PerfPowerPoint { label: "fast".into(), time: 1.0, power: 2.0 },
///     PerfPowerPoint { label: "dominated".into(), time: 2.0, power: 3.0 },
///     PerfPowerPoint { label: "frugal".into(), time: 3.0, power: 1.0 },
/// ];
/// let frontier = pareto_frontier(&points);
/// assert_eq!(frontier.len(), 2);
/// assert_eq!(frontier[0].label, "fast");
/// ```
pub fn pareto_frontier(points: &[PerfPowerPoint]) -> Vec<PerfPowerPoint> {
    let mut frontier: Vec<PerfPowerPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| p.dominated_by(q)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.time.total_cmp(&b.time));
    frontier.dedup_by(|a, b| a.time == b.time && a.power == b.power);
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_grow_superlinearly() {
        for levels in [&BIG_LEVELS, &LITTLE_LEVELS] {
            for w in levels.windows(2) {
                let (a, b) = (w[0], w[1]);
                assert!(b.ghz > a.ghz);
                // Power grows faster than frequency (V scales too).
                assert!(
                    b.watts / a.watts > b.ghz / a.ghz,
                    "{} -> {} not superlinear",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn table_vii_anchors() {
        assert_eq!(BIG_LEVELS[1].watts, 0.591);
        assert_eq!(BIG_LEVELS[2].watts, 0.841);
        assert_eq!(BIG_LEVELS[3].watts, 1.205);
    }

    #[test]
    fn little_cluster_is_cheap() {
        // Four littles at full tilt still cost less than one big at 1 GHz
        // — the premise of the paper's power trade (Section VII-B).
        let four_littles = 4.0 * LITTLE_LEVELS[3].watts;
        assert!(four_littles < BIG_LEVELS[1].watts * 1.5);
    }

    #[test]
    fn system_power_composition() {
        let (b, l) = (BIG_LEVELS[1], LITTLE_LEVELS[2]);
        assert_eq!(SystemPower::OneLittle.watts(b, l), l.watts);
        assert_eq!(SystemPower::OneBig.watts(b, l), b.watts);
        assert!(SystemPower::BigPlusDve.watts(b, l) > 2.0 * b.watts);
        let bl = SystemPower::BigPlusLittles(4).watts(b, l);
        assert!((bl - (b.watts + 4.0 * l.watts)).abs() < 1e-12);
    }

    #[test]
    fn pareto_removes_dominated_points() {
        let pts = vec![
            PerfPowerPoint {
                label: "fast+hot".into(),
                time: 1.0,
                power: 2.0,
            },
            PerfPowerPoint {
                label: "slow+cool".into(),
                time: 2.0,
                power: 1.0,
            },
            PerfPowerPoint {
                label: "dominated".into(),
                time: 2.5,
                power: 2.5,
            },
            PerfPowerPoint {
                label: "also-dominated".into(),
                time: 1.5,
                power: 2.5,
            },
        ];
        let f = pareto_frontier(&pts);
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["fast+hot", "slow+cool"]);
    }

    #[test]
    fn pareto_is_idempotent() {
        let pts = vec![
            PerfPowerPoint {
                label: "a".into(),
                time: 1.0,
                power: 3.0,
            },
            PerfPowerPoint {
                label: "b".into(),
                time: 2.0,
                power: 2.0,
            },
            PerfPowerPoint {
                label: "c".into(),
                time: 3.0,
                power: 1.0,
            },
        ];
        let f1 = pareto_frontier(&pts);
        let f2 = pareto_frontier(&f1);
        assert_eq!(f1, f2);
    }

    #[test]
    fn energy() {
        let p = PerfPowerPoint {
            label: "x".into(),
            time: 2.0,
            power: 3.0,
        };
        assert_eq!(p.energy(), 6.0);
    }
}
