#![warn(missing_docs)]
//! # big-vlittle — a cycle-level reproduction of big.VLITTLE (MICRO 2022)
//!
//! *big.VLITTLE: On-Demand Data-Parallel Acceleration for Mobile Systems
//! on Chip* (Ta, Al-Hawaj, Cebry, Ou, Hall, Golden, Batten — Cornell)
//! proposes reconfiguring the little cores of a mobile big.LITTLE SoC into
//! a decoupled RISC-V-Vector engine on demand. This workspace rebuilds the
//! paper's entire evaluation stack in Rust: ISA model and golden executor,
//! reconfigurable cache hierarchy, in-order/out-of-order core models, the
//! VLITTLE engine (VCU/VXU/VMU), both baseline vector machines, a
//! work-stealing runtime, all nineteen workloads, and the experiment
//! harness for every figure and table.
//!
//! This crate is the facade: it re-exports each subsystem under a short
//! module name and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ## Quickstart
//!
//! ```
//! use big_vlittle::sim::{simulate, SimParams, SystemKind};
//! use big_vlittle::workloads::{kernels::saxpy, Scale};
//!
//! let workload = saxpy::build(Scale::tiny());
//! let result = simulate(SystemKind::B4Vl, &workload, &SimParams::default())?;
//! println!("saxpy on 1b-4VL: {:.1} µs", result.wall_ns / 1000.0);
//! # Ok::<(), String>(())
//! ```
//!
//! See `examples/` for larger scenarios and `crates/experiments/` for the
//! figure/table regeneration binaries.

/// Area model (paper Table VI).
pub use bvl_area as area;
/// Baseline vector machines (integrated unit, decoupled engine).
pub use bvl_baseline as baseline;
/// Core timing models (little in-order, big out-of-order).
pub use bvl_core as cores;
/// Experiment harness (figures and tables).
pub use bvl_experiments as experiments;
/// ISA model, assembler, golden executor.
pub use bvl_isa as isa;
/// Reconfigurable memory hierarchy.
pub use bvl_mem as mem;
/// DVFS power model and Pareto analysis (paper Table VII, Figures 9–11).
pub use bvl_power as power;
/// Work-stealing task-runtime model.
pub use bvl_runtime as runtime;
/// System compositions and the simulation loop.
pub use bvl_sim as sim;
/// The VLITTLE engine (VCU, VXU, VMU, register mapping).
pub use bvl_vengine as vengine;
/// The paper's workloads.
pub use bvl_workloads as workloads;
