//! Cross-crate integration tests: every workload runs end-to-end through
//! the full timing stack on representative systems, and every run is
//! verified against the workload's pure-Rust reference.

use big_vlittle::sim::{simulate, SimParams, SystemKind};
use big_vlittle::workloads::{all_data_parallel, all_task_parallel, Scale, Workload};

fn run(kind: SystemKind, w: &Workload) {
    simulate(kind, w, &SimParams::default())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, kind.label()));
}

/// The full matrix for two representative workloads per suite.
#[test]
fn representative_workloads_on_every_system() {
    let s = Scale::tiny();
    let picks: Vec<Workload> = vec![
        big_vlittle::workloads::kernels::vvadd::build(s),
        big_vlittle::workloads::apps::blackscholes::build(s),
        big_vlittle::workloads::graph::bfs::build(s),
        big_vlittle::workloads::graph::pagerank::build(s),
    ];
    for w in &picks {
        for kind in SystemKind::ALL {
            run(kind, w);
        }
    }
}

/// Every data-parallel workload completes (and checks) on the headline
/// system and the closest competitor.
#[test]
fn all_data_parallel_on_vector_systems() {
    for w in all_data_parallel(Scale::tiny()) {
        run(SystemKind::B4Vl, &w);
        run(SystemKind::BIv4L, &w);
    }
}

/// Every task-parallel workload completes on the multi-core systems.
#[test]
fn all_task_parallel_on_multicore_systems() {
    for w in all_task_parallel(Scale::tiny()) {
        run(SystemKind::B4L, &w);
        run(SystemKind::B4Vl, &w);
    }
}

/// The same simulation run twice produces bit-identical timing — the
/// simulator is deterministic.
#[test]
fn simulation_is_deterministic() {
    let w1 = big_vlittle::workloads::kernels::saxpy::build(Scale::tiny());
    let w2 = big_vlittle::workloads::kernels::saxpy::build(Scale::tiny());
    let r1 = simulate(SystemKind::B4Vl, &w1, &SimParams::default()).expect("run 1");
    let r2 = simulate(SystemKind::B4Vl, &w2, &SimParams::default()).expect("run 2");
    assert_eq!(r1.wall_ns, r2.wall_ns);
    assert_eq!(r1.fetch_groups, r2.fetch_groups);
    assert_eq!(r1.mem.data_reqs, r2.mem.data_reqs);
    assert_eq!(r1.uncore_cycles, r2.uncore_cycles);
}

/// Lane breakdowns always account for every lane cycle.
#[test]
fn lane_breakdowns_are_complete() {
    use big_vlittle::cores::types::StallKind;
    let w = big_vlittle::workloads::apps::lavamd::build(Scale::tiny());
    let r = simulate(SystemKind::B4Vl, &w, &SimParams::default()).expect("runs");
    for lane in &r.lanes {
        let total: u64 = StallKind::ALL.iter().map(|&k| lane.of(k)).sum();
        assert_eq!(total, lane.cycles);
    }
    // lavamd's reductions must put cycles in the cross-element bucket.
    assert!(
        r.lane_total(StallKind::Xelem) > 0,
        "no xelem cycles on a reduction-heavy workload"
    );
}
