//! The paper's headline claims, asserted as directional (shape) tests at
//! test scale. Absolute factors are recorded in EXPERIMENTS.md; these
//! tests pin the *orderings and crossovers* so refactors cannot silently
//! invert a result.

use big_vlittle::experiments::geomean;
use big_vlittle::sim::{simulate, SimParams, SystemKind};
use big_vlittle::workloads::{all_data_parallel, all_task_parallel, Scale, Workload};

fn wall(kind: SystemKind, w: &Workload) -> f64 {
    simulate(kind, w, &SimParams::default())
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, kind.label()))
        .wall_ns
}

/// Abstract claim 1: on data-parallel workloads, big.VLITTLE beats the
/// area-comparable big.LITTLE with integrated vector unit (paper: 1.6x).
#[test]
fn vlittle_beats_integrated_unit_on_data_parallel() {
    let speedups: Vec<f64> = all_data_parallel(Scale::tiny())
        .iter()
        .map(|w| wall(SystemKind::BIv4L, w) / wall(SystemKind::B4Vl, w))
        .collect();
    let gm = geomean(&speedups);
    assert!(
        gm > 1.2,
        "geomean 1b-4VL speedup over 1bIV-4L = {gm:.2} (paper: 1.6)"
    );
}

/// Abstract claim 2: on task-parallel workloads, big.VLITTLE beats the
/// decoupled vector engine (paper: 1.7x), because the DVE's system can
/// only use its big core.
#[test]
fn vlittle_beats_dve_on_task_parallel() {
    let speedups: Vec<f64> = all_task_parallel(Scale::tiny())
        .iter()
        .map(|w| wall(SystemKind::BDv, w) / wall(SystemKind::B4Vl, w))
        .collect();
    let gm = geomean(&speedups);
    assert!(
        gm > 1.3,
        "geomean 1b-4VL speedup over 1bDV on graphs = {gm:.2} (paper: 1.7)"
    );
}

/// Section V-A: 1bIV-4L and 1b-4VL perform identically on task-parallel
/// workloads — in scalar mode the VLITTLE additions are bypassed with no
/// overhead.
#[test]
fn vlittle_has_no_scalar_mode_overhead() {
    for w in all_task_parallel(Scale::tiny()).iter().take(3) {
        let a = wall(SystemKind::BIv4L, w);
        let b = wall(SystemKind::B4Vl, w);
        let rel = (a - b).abs() / a;
        assert!(
            rel < 1e-9,
            "{}: 1bIV-4L = {a} vs 1b-4VL = {b} (should be identical)",
            w.name
        );
    }
}

/// Section V-A: the DVE is the fastest data-parallel machine; big.VLITTLE
/// sits between it and the integrated unit.
#[test]
fn data_parallel_ordering_dve_vlittle_ivu() {
    let dp = all_data_parallel(Scale::tiny());
    let gm = |k: SystemKind| geomean(&dp.iter().map(|w| 1.0 / wall(k, w)).collect::<Vec<_>>());
    let (dve, vlittle, ivu) = (
        gm(SystemKind::BDv),
        gm(SystemKind::B4Vl),
        gm(SystemKind::BIv),
    );
    assert!(dve > vlittle, "1bDV ({dve:e}) !> 1b-4VL ({vlittle:e})");
    assert!(vlittle > ivu, "1b-4VL ({vlittle:e}) !> 1bIV ({ivu:e})");
}

/// Section V-B: each reconfigurable-pipeline feature helps — packed
/// elements (1c -> 1c+sw) and the second chime (1c+sw -> 2c+sw) both
/// reduce geomean execution time.
#[test]
fn chimes_and_packing_both_help() {
    use big_vlittle::vengine::regmap::RegMap;
    let dp = all_data_parallel(Scale::tiny());
    let time_with = |regmap: RegMap| {
        let mut params = SimParams::default();
        params.engine.regmap = regmap;
        geomean(
            &dp.iter()
                .map(|w| {
                    simulate(SystemKind::B4Vl, w, &params)
                        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
                        .wall_ns
                })
                .collect::<Vec<_>>(),
        )
    };
    let c1 = time_with(RegMap {
        cores: 4,
        chimes: 1,
        packed: false,
    });
    let c1sw = time_with(RegMap {
        cores: 4,
        chimes: 1,
        packed: true,
    });
    let c2sw = time_with(RegMap::paper_default());
    assert!(c1sw < c1, "packing did not help: {c1sw} !< {c1}");
    assert!(c2sw < c1sw, "second chime did not help: {c2sw} !< {c1sw}");
}
